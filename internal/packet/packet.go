// Package packet defines the wire messages exchanged by MNP and by the
// baseline protocols (Deluge, MOAP, XNP), together with their binary
// codecs and framing.
//
// The frame layout mirrors a TinyOS TOS_Msg: a fixed header (dest
// address, AM type, group, length) followed by the payload and a CRC16.
// All radio traffic is physically broadcast; "destined" messages carry
// the destination in the header, and other nodes are free to snoop them
// — MNP's hidden-terminal defence depends on exactly this overhearing.
package packet

import (
	"encoding/binary"
	"fmt"
)

// NodeID identifies a mote. IDs are assigned by the deployment; the
// base station conventionally has ID 0. The type is 32 bits wide so
// deployments can exceed the 16-bit TOS_Msg address space (the sparse
// radio geometry simulates hundreds of thousands of nodes); on the wire
// an ID below wideEscape still occupies the classic two bytes, so every
// deployment that fit the old address space produces byte-identical
// frames.
type NodeID uint32

// Broadcast is the address that targets every node in radio range. It
// encodes as the classic 16-bit 0xFFFF on the wire.
const Broadcast NodeID = 0xFFFFFFFF

// String renders a NodeID for logs.
func (n NodeID) String() string {
	if n == Broadcast {
		return "bcast"
	}
	return fmt.Sprintf("n%d", uint32(n))
}

// Kind discriminates message types on the wire.
type Kind uint8

// Message kinds. MNP kinds come first, then one block per baseline.
const (
	// MNP messages (paper §3).
	KindAdvertise Kind = iota + 1
	KindDownloadRequest
	KindStartDownload
	KindData
	KindEndDownload
	KindQuery
	KindRepairRequest
	KindStartSignal

	// Deluge baseline.
	KindDelugeAdv
	KindDelugeReq
	KindDelugeData

	// MOAP baseline.
	KindMoapPublish
	KindMoapSubscribe
	KindMoapData
	KindMoapNak

	// XNP baseline.
	KindXnpData
	KindXnpQueryStatus
	KindXnpStatus

	// Rateless coded dissemination (rlnc).
	KindRlncAdv
	KindRlncData

	// Gossip code propagation (gossip).
	KindGossipAdv
	KindGossipData
)

var kindNames = map[Kind]string{
	KindAdvertise:       "Advertise",
	KindDownloadRequest: "DownloadRequest",
	KindStartDownload:   "StartDownload",
	KindData:            "Data",
	KindEndDownload:     "EndDownload",
	KindQuery:           "Query",
	KindRepairRequest:   "RepairRequest",
	KindStartSignal:     "StartSignal",
	KindDelugeAdv:       "DelugeAdv",
	KindDelugeReq:       "DelugeReq",
	KindDelugeData:      "DelugeData",
	KindMoapPublish:     "MoapPublish",
	KindMoapSubscribe:   "MoapSubscribe",
	KindMoapData:        "MoapData",
	KindMoapNak:         "MoapNak",
	KindXnpData:         "XnpData",
	KindXnpQueryStatus:  "XnpQueryStatus",
	KindXnpStatus:       "XnpStatus",
	KindRlncAdv:         "RlncAdv",
	KindRlncData:        "RlncData",
	KindGossipAdv:       "GossipAdv",
	KindGossipData:      "GossipData",
}

// String returns the message-kind name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Class groups kinds into the three categories the paper's Figure 12
// plots: advertisements, download requests, and data.
type Class uint8

// Traffic classes for accounting.
const (
	ClassControl Class = iota + 1 // handshakes, queries, signals
	ClassAdvertisement
	ClassRequest
	ClassData
)

// ClassOf maps a kind to its accounting class.
func ClassOf(k Kind) Class {
	switch k {
	case KindAdvertise, KindDelugeAdv, KindMoapPublish, KindRlncAdv, KindGossipAdv:
		return ClassAdvertisement
	case KindDownloadRequest, KindDelugeReq, KindMoapSubscribe, KindMoapNak, KindRepairRequest:
		return ClassRequest
	case KindData, KindDelugeData, KindMoapData, KindXnpData, KindRlncData, KindGossipData:
		return ClassData
	default:
		return ClassControl
	}
}

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassAdvertisement:
		return "advertisement"
	case ClassRequest:
		return "request"
	case ClassData:
		return "data"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// FrameOverhead is the fixed per-frame cost in bytes for a narrow
// (sub-wideEscape) destination: destination address (2), AM type (1),
// group (1), length (1) and CRC (2), matching the TOS_Msg header the
// Mica-2 radio stack uses. A wide destination address adds
// wideExtraBytes; see appendNodeID.
const FrameOverhead = 7

// Packet is a decodable protocol message.
type Packet interface {
	// Kind identifies the message type.
	Kind() Kind
	// Dest is the logical destination; Broadcast for undirected
	// messages. Physically every message is broadcast.
	Dest() NodeID
	// Source is the transmitting node, filled by the sender.
	Source() NodeID
	// appendPayload encodes the message body (excluding framing).
	appendPayload(b []byte) []byte
	// decodePayload parses the message body.
	decodePayload(b []byte) error
}

// WireSize returns the number of bytes the packet occupies on air,
// driving both airtime and energy accounting.
func WireSize(p Packet) int {
	return nodeIDWireSize(p.Dest()) + 5 + len(p.appendPayload(nil))
}

// Encode serializes p into a self-describing frame.
func Encode(p Packet) []byte { return AppendEncode(nil, p) }

// AppendEncode serializes p into a self-describing frame appended to
// dst, reusing dst's capacity. The simulator's radio uses it to encode
// each transmission into a pooled buffer without allocating.
func AppendEncode(dst []byte, p Packet) []byte {
	start := len(dst)
	dst = appendNodeID(dst, p.Dest())
	dst = append(dst, byte(p.Kind()))
	dst = append(dst, 0x7d) // group, fixed
	dst = append(dst, 0)    // payload length, patched below
	lenAt := len(dst) - 1
	dst = p.appendPayload(dst)
	dst[lenAt] = byte(len(dst) - lenAt - 1)
	return binary.BigEndian.AppendUint16(dst, crc16(dst[start:]))
}

// Decode parses a frame produced by Encode and returns the typed
// message.
func Decode(frame []byte) (Packet, error) { return decode(frame, true) }

// DecodeTrusted parses a frame known to have been produced by Encode in
// this process, skipping the CRC verification that Decode performs. The
// simulated radio uses it on its own cached frames — corruption there
// is modelled by collision and BER sets, not by bit-flipping the frame
// bytes — so the checksum can never fail. Frames from outside the
// process must go through Decode.
func DecodeTrusted(frame []byte) (Packet, error) { return decode(frame, false) }

func decode(frame []byte, verifyCRC bool) (Packet, error) {
	return decodeWith(nil, frame, verifyCRC)
}

// decodeWith parses a frame, taking the message struct from cache when
// one is supplied (see DecodeCache) and from newByKind otherwise.
func decodeWith(cache *DecodeCache, frame []byte, verifyCRC bool) (Packet, error) {
	if len(frame) < FrameOverhead {
		return nil, fmt.Errorf("packet: frame too short (%d bytes)", len(frame))
	}
	if verifyCRC {
		body, crcBytes := frame[:len(frame)-2], frame[len(frame)-2:]
		if got, want := binary.BigEndian.Uint16(crcBytes), crc16(body); got != want {
			return nil, fmt.Errorf("packet: CRC mismatch (got %#04x, want %#04x)", got, want)
		}
	}
	_, destLen, err := readNodeID(frame)
	if err != nil {
		return nil, fmt.Errorf("packet: bad destination address: %w", err)
	}
	if len(frame) < destLen+5 {
		return nil, fmt.Errorf("packet: frame too short (%d bytes)", len(frame))
	}
	kind := Kind(frame[destLen])
	plen := int(frame[destLen+2])
	if len(frame) != destLen+5+plen {
		return nil, fmt.Errorf("packet: length field %d disagrees with frame size %d", plen, len(frame))
	}
	var p Packet
	if cache != nil {
		p, err = cache.forKind(kind)
	} else {
		p, err = newByKind(kind)
	}
	if err != nil {
		return nil, err
	}
	if err := p.decodePayload(frame[destLen+3 : destLen+3+plen]); err != nil {
		return nil, fmt.Errorf("packet: decode %s: %w", kind, err)
	}
	return p, nil
}

func newByKind(k Kind) (Packet, error) {
	switch k {
	case KindAdvertise:
		return &Advertise{}, nil
	case KindDownloadRequest:
		return &DownloadRequest{}, nil
	case KindStartDownload:
		return &StartDownload{}, nil
	case KindData:
		return &Data{}, nil
	case KindEndDownload:
		return &EndDownload{}, nil
	case KindQuery:
		return &Query{}, nil
	case KindRepairRequest:
		return &RepairRequest{}, nil
	case KindStartSignal:
		return &StartSignal{}, nil
	case KindDelugeAdv:
		return &DelugeAdv{}, nil
	case KindDelugeReq:
		return &DelugeReq{}, nil
	case KindDelugeData:
		return &DelugeData{}, nil
	case KindMoapPublish:
		return &MoapPublish{}, nil
	case KindMoapSubscribe:
		return &MoapSubscribe{}, nil
	case KindMoapData:
		return &MoapData{}, nil
	case KindMoapNak:
		return &MoapNak{}, nil
	case KindXnpData:
		return &XnpData{}, nil
	case KindXnpQueryStatus:
		return &XnpQueryStatus{}, nil
	case KindXnpStatus:
		return &XnpStatus{}, nil
	case KindRlncAdv:
		return &RlncAdv{}, nil
	case KindRlncData:
		return &RlncData{}, nil
	case KindGossipAdv:
		return &GossipAdv{}, nil
	case KindGossipData:
		return &GossipData{}, nil
	default:
		return nil, fmt.Errorf("packet: unknown kind %d", uint8(k))
	}
}

// crcTable holds the byte-indexed CCITT CRC table so crc16 processes a
// byte per step instead of a bit per step.
var crcTable = func() (t [256]uint16) {
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}()

// crc16 is the CCITT CRC the CC1000 stack uses over the frame body.
func crc16(data []byte) uint16 {
	var crc uint16 = 0xFFFF
	for _, b := range data {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^b]
	}
	return crc
}
