package packet

import (
	"encoding/binary"
	"fmt"

	"mnp/internal/bitvec"
)

// Advertise announces that Src holds segment SegID of program
// ProgramID and is competing to transmit it. ReqCtr is the number of
// distinct requesters Src has accumulated this advertising round;
// competing sources overhearing a higher ReqCtr concede and sleep.
type Advertise struct {
	Src             NodeID
	ProgramID       uint8
	ProgramSegments uint8  // total segments in the program
	SegID           uint8  // segment being advertised (1-based)
	SegNominal      uint8  // packets per full segment
	TotalPackets    uint16 // packets in the whole program
	ReqCtr          uint8
}

// Kind implements Packet.
func (*Advertise) Kind() Kind { return KindAdvertise }

// Dest implements Packet; advertisements are broadcast.
func (*Advertise) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *Advertise) Source() NodeID { return a.Src }

func (a *Advertise) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(a.Src))
	b = append(b, a.ProgramID, a.ProgramSegments, a.SegID, a.SegNominal)
	b = binary.BigEndian.AppendUint16(b, a.TotalPackets)
	return append(b, a.ReqCtr)
}

func (a *Advertise) decodePayload(b []byte) error {
	if len(b) != 9 {
		return fmt.Errorf("advertise payload %d bytes, want 9", len(b))
	}
	a.Src = NodeID(binary.BigEndian.Uint16(b))
	a.ProgramID, a.ProgramSegments, a.SegID, a.SegNominal = b[2], b[3], b[4], b[5]
	a.TotalPackets = binary.BigEndian.Uint16(b[6:])
	a.ReqCtr = b[8]
	return nil
}

// DownloadRequest asks DestID to transmit segment SegID. It is sent as
// a broadcast with the destination in a field, so third parties learn
// both that DestID is a potential source and how many requesters it
// has (EchoReqCtr) — the paper's answer to the hidden-terminal problem.
// Missing carries the requester's MissingVector for the segment so the
// source can fold it into its ForwardVector.
type DownloadRequest struct {
	Src        NodeID
	DestID     NodeID
	ProgramID  uint8
	SegID      uint8
	SegPackets uint8
	EchoReqCtr uint8 // the ReqCtr value DestID advertised
	Missing    *bitvec.Vector
}

// Kind implements Packet.
func (*DownloadRequest) Kind() Kind { return KindDownloadRequest }

// Dest implements Packet.
func (r *DownloadRequest) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *DownloadRequest) Source() NodeID { return r.Src }

func (r *DownloadRequest) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(r.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(r.DestID))
	b = append(b, r.ProgramID, r.SegID, r.SegPackets, r.EchoReqCtr)
	if r.Missing != nil {
		b = append(b, r.Missing.Bytes()...)
	}
	return b
}

func (r *DownloadRequest) decodePayload(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("download request payload %d bytes, want >= 8", len(b))
	}
	r.Src = NodeID(binary.BigEndian.Uint16(b))
	r.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	r.ProgramID, r.SegID, r.SegPackets, r.EchoReqCtr = b[4], b[5], b[6], b[7]
	rest := b[8:]
	if len(rest) == 0 {
		r.Missing = nil
		return nil
	}
	v, err := bitvec.Decode(int(r.SegPackets), rest)
	if err != nil {
		return err
	}
	r.Missing = v
	return nil
}

// StartDownload announces that Src won sender selection and is about
// to stream segment SegID. Receivers expecting exactly this segment
// enter the download state and adopt Src as their parent.
type StartDownload struct {
	Src        NodeID
	ProgramID  uint8
	SegID      uint8
	SegPackets uint8
}

// Kind implements Packet.
func (*StartDownload) Kind() Kind { return KindStartDownload }

// Dest implements Packet.
func (*StartDownload) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (s *StartDownload) Source() NodeID { return s.Src }

func (s *StartDownload) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(s.Src))
	return append(b, s.ProgramID, s.SegID, s.SegPackets)
}

func (s *StartDownload) decodePayload(b []byte) error {
	if len(b) != 5 {
		return fmt.Errorf("start download payload %d bytes, want 5", len(b))
	}
	s.Src = NodeID(binary.BigEndian.Uint16(b))
	s.ProgramID, s.SegID, s.SegPackets = b[2], b[3], b[4]
	return nil
}

// Data carries one code packet of a segment. Receivers accept Data
// from any sender as long as the segment ID matches what they expect;
// each packet has a unique (SegID, PacketID) identity, so arrival
// order does not matter.
type Data struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
	PacketID  uint8
	Payload   []byte
}

// Kind implements Packet.
func (*Data) Kind() Kind { return KindData }

// Dest implements Packet.
func (*Data) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *Data) Source() NodeID { return d.Src }

func (d *Data) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(d.Src))
	b = append(b, d.ProgramID, d.SegID, d.PacketID)
	return append(b, d.Payload...)
}

func (d *Data) decodePayload(b []byte) error {
	if len(b) < 5 {
		return fmt.Errorf("data payload %d bytes, want >= 5", len(b))
	}
	d.Src = NodeID(binary.BigEndian.Uint16(b))
	d.ProgramID, d.SegID, d.PacketID = b[2], b[3], b[4]
	d.Payload = append([]byte(nil), b[5:]...)
	return nil
}

// EndDownload marks the end of a segment transmission by Src.
// Receivers with a clean MissingVector advance; the rest enter the
// repair path (query/update) or the fail state.
type EndDownload struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
}

// Kind implements Packet.
func (*EndDownload) Kind() Kind { return KindEndDownload }

// Dest implements Packet.
func (*EndDownload) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (e *EndDownload) Source() NodeID { return e.Src }

func (e *EndDownload) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(e.Src))
	return append(b, e.ProgramID, e.SegID)
}

func (e *EndDownload) decodePayload(b []byte) error {
	if len(b) != 4 {
		return fmt.Errorf("end download payload %d bytes, want 4", len(b))
	}
	e.Src = NodeID(binary.BigEndian.Uint16(b))
	e.ProgramID, e.SegID = b[2], b[3]
	return nil
}

// Query opens the optional query/update phase: the parent asks its
// children to report missing packets of SegID.
type Query struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
}

// Kind implements Packet.
func (*Query) Kind() Kind { return KindQuery }

// Dest implements Packet.
func (*Query) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (q *Query) Source() NodeID { return q.Src }

func (q *Query) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(q.Src))
	return append(b, q.ProgramID, q.SegID)
}

func (q *Query) decodePayload(b []byte) error {
	if len(b) != 4 {
		return fmt.Errorf("query payload %d bytes, want 4", len(b))
	}
	q.Src = NodeID(binary.BigEndian.Uint16(b))
	q.ProgramID, q.SegID = b[2], b[3]
	return nil
}

// RepairRequest asks the parent (DestID) to retransmit one missing
// packet during the query/update phase. The child walks its
// MissingVector one packet at a time, matching the paper's state
// machine ("store the packet and request for the next missing packet").
type RepairRequest struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	SegID     uint8
	PacketID  uint8
}

// Kind implements Packet.
func (*RepairRequest) Kind() Kind { return KindRepairRequest }

// Dest implements Packet.
func (r *RepairRequest) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *RepairRequest) Source() NodeID { return r.Src }

func (r *RepairRequest) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(r.Src))
	b = binary.BigEndian.AppendUint16(b, uint16(r.DestID))
	return append(b, r.ProgramID, r.SegID, r.PacketID)
}

func (r *RepairRequest) decodePayload(b []byte) error {
	if len(b) != 7 {
		return fmt.Errorf("repair request payload %d bytes, want 7", len(b))
	}
	r.Src = NodeID(binary.BigEndian.Uint16(b))
	r.DestID = NodeID(binary.BigEndian.Uint16(b[2:]))
	r.ProgramID, r.SegID, r.PacketID = b[4], b[5], b[6]
	return nil
}

// StartSignal is the external reboot command. The paper deliberately
// does not reboot nodes on local estimation; the base station floods
// this signal once empirical data says dissemination has finished.
type StartSignal struct {
	Src       NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*StartSignal) Kind() Kind { return KindStartSignal }

// Dest implements Packet.
func (*StartSignal) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (s *StartSignal) Source() NodeID { return s.Src }

func (s *StartSignal) appendPayload(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, uint16(s.Src))
	return append(b, s.ProgramID)
}

func (s *StartSignal) decodePayload(b []byte) error {
	if len(b) != 3 {
		return fmt.Errorf("start signal payload %d bytes, want 3", len(b))
	}
	s.Src = NodeID(binary.BigEndian.Uint16(b))
	s.ProgramID = b[2]
	return nil
}
