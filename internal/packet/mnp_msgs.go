package packet

import (
	"fmt"

	"mnp/internal/bitvec"
)

// Advertise announces that Src holds segment SegID of program
// ProgramID and is competing to transmit it. ReqCtr is the number of
// distinct requesters Src has accumulated this advertising round;
// competing sources overhearing a higher ReqCtr concede and sleep.
type Advertise struct {
	Src             NodeID
	ProgramID       uint8
	ProgramSegments uint8  // total segments in the program
	SegID           uint8  // segment being advertised (1-based)
	SegNominal      uint8  // packets per full segment
	TotalPackets    uint16 // packets in the whole program
	ReqCtr          uint8
}

// Kind implements Packet.
func (*Advertise) Kind() Kind { return KindAdvertise }

// Dest implements Packet; advertisements are broadcast.
func (*Advertise) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *Advertise) Source() NodeID { return a.Src }

func (a *Advertise) appendPayload(b []byte) []byte {
	b = appendNodeID(b, a.Src)
	b = append(b, a.ProgramID, a.ProgramSegments, a.SegID, a.SegNominal)
	b = appendU16(b, a.TotalPackets)
	return append(b, a.ReqCtr)
}

func (a *Advertise) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	a.Src = r.nodeID()
	a.ProgramID, a.ProgramSegments, a.SegID, a.SegNominal = r.u8(), r.u8(), r.u8(), r.u8()
	a.TotalPackets = r.u16()
	a.ReqCtr = r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed advertise payload (%d bytes)", len(b))
	}
	return nil
}

// DownloadRequest asks DestID to transmit segment SegID. It is sent as
// a broadcast with the destination in a field, so third parties learn
// both that DestID is a potential source and how many requesters it
// has (EchoReqCtr) — the paper's answer to the hidden-terminal problem.
// Missing carries the requester's MissingVector for the segment so the
// source can fold it into its ForwardVector.
type DownloadRequest struct {
	Src        NodeID
	DestID     NodeID
	ProgramID  uint8
	SegID      uint8
	SegPackets uint8
	EchoReqCtr uint8 // the ReqCtr value DestID advertised
	Missing    *bitvec.Vector
}

// Kind implements Packet.
func (*DownloadRequest) Kind() Kind { return KindDownloadRequest }

// Dest implements Packet.
func (r *DownloadRequest) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *DownloadRequest) Source() NodeID { return r.Src }

func (r *DownloadRequest) appendPayload(b []byte) []byte {
	b = appendNodeID(b, r.Src)
	b = appendNodeID(b, r.DestID)
	b = append(b, r.ProgramID, r.SegID, r.SegPackets, r.EchoReqCtr)
	if r.Missing != nil {
		b = append(b, r.Missing.Bytes()...)
	}
	return b
}

func (r *DownloadRequest) decodePayload(b []byte) error {
	rd := payloadReader{b: b}
	r.Src = rd.nodeID()
	r.DestID = rd.nodeID()
	r.ProgramID, r.SegID, r.SegPackets, r.EchoReqCtr = rd.u8(), rd.u8(), rd.u8(), rd.u8()
	rest := rd.rest()
	if !rd.ok() {
		return fmt.Errorf("malformed download request payload (%d bytes)", len(b))
	}
	if len(rest) == 0 {
		r.Missing = nil
		return nil
	}
	v, err := bitvec.DecodeReuse(r.Missing, int(r.SegPackets), rest)
	if err != nil {
		return err
	}
	r.Missing = v
	return nil
}

// StartDownload announces that Src won sender selection and is about
// to stream segment SegID. Receivers expecting exactly this segment
// enter the download state and adopt Src as their parent.
type StartDownload struct {
	Src        NodeID
	ProgramID  uint8
	SegID      uint8
	SegPackets uint8
}

// Kind implements Packet.
func (*StartDownload) Kind() Kind { return KindStartDownload }

// Dest implements Packet.
func (*StartDownload) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (s *StartDownload) Source() NodeID { return s.Src }

func (s *StartDownload) appendPayload(b []byte) []byte {
	b = appendNodeID(b, s.Src)
	return append(b, s.ProgramID, s.SegID, s.SegPackets)
}

func (s *StartDownload) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	s.Src = r.nodeID()
	s.ProgramID, s.SegID, s.SegPackets = r.u8(), r.u8(), r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed start download payload (%d bytes)", len(b))
	}
	return nil
}

// Data carries one code packet of a segment. Receivers accept Data
// from any sender as long as the segment ID matches what they expect;
// each packet has a unique (SegID, PacketID) identity, so arrival
// order does not matter.
type Data struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
	PacketID  uint8
	Payload   []byte
}

// Kind implements Packet.
func (*Data) Kind() Kind { return KindData }

// Dest implements Packet.
func (*Data) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *Data) Source() NodeID { return d.Src }

func (d *Data) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID, d.SegID, d.PacketID)
	return append(b, d.Payload...)
}

func (d *Data) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID, d.SegID, d.PacketID = r.u8(), r.u8(), r.u8()
	if r.failed {
		return fmt.Errorf("malformed data payload (%d bytes)", len(b))
	}
	d.Payload = append(d.Payload[:0], r.rest()...)
	return nil
}

// EndDownload marks the end of a segment transmission by Src.
// Receivers with a clean MissingVector advance; the rest enter the
// repair path (query/update) or the fail state.
type EndDownload struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
}

// Kind implements Packet.
func (*EndDownload) Kind() Kind { return KindEndDownload }

// Dest implements Packet.
func (*EndDownload) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (e *EndDownload) Source() NodeID { return e.Src }

func (e *EndDownload) appendPayload(b []byte) []byte {
	b = appendNodeID(b, e.Src)
	return append(b, e.ProgramID, e.SegID)
}

func (e *EndDownload) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	e.Src = r.nodeID()
	e.ProgramID, e.SegID = r.u8(), r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed end download payload (%d bytes)", len(b))
	}
	return nil
}

// Query opens the optional query/update phase: the parent asks its
// children to report missing packets of SegID.
type Query struct {
	Src       NodeID
	ProgramID uint8
	SegID     uint8
}

// Kind implements Packet.
func (*Query) Kind() Kind { return KindQuery }

// Dest implements Packet.
func (*Query) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (q *Query) Source() NodeID { return q.Src }

func (q *Query) appendPayload(b []byte) []byte {
	b = appendNodeID(b, q.Src)
	return append(b, q.ProgramID, q.SegID)
}

func (q *Query) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	q.Src = r.nodeID()
	q.ProgramID, q.SegID = r.u8(), r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed query payload (%d bytes)", len(b))
	}
	return nil
}

// RepairRequest asks the parent (DestID) to retransmit one missing
// packet during the query/update phase. The child walks its
// MissingVector one packet at a time, matching the paper's state
// machine ("store the packet and request for the next missing packet").
type RepairRequest struct {
	Src       NodeID
	DestID    NodeID
	ProgramID uint8
	SegID     uint8
	PacketID  uint8
}

// Kind implements Packet.
func (*RepairRequest) Kind() Kind { return KindRepairRequest }

// Dest implements Packet.
func (r *RepairRequest) Dest() NodeID { return r.DestID }

// Source implements Packet.
func (r *RepairRequest) Source() NodeID { return r.Src }

func (r *RepairRequest) appendPayload(b []byte) []byte {
	b = appendNodeID(b, r.Src)
	b = appendNodeID(b, r.DestID)
	return append(b, r.ProgramID, r.SegID, r.PacketID)
}

func (r *RepairRequest) decodePayload(b []byte) error {
	rd := payloadReader{b: b}
	r.Src = rd.nodeID()
	r.DestID = rd.nodeID()
	r.ProgramID, r.SegID, r.PacketID = rd.u8(), rd.u8(), rd.u8()
	if !rd.ok() {
		return fmt.Errorf("malformed repair request payload (%d bytes)", len(b))
	}
	return nil
}

// StartSignal is the external reboot command. The paper deliberately
// does not reboot nodes on local estimation; the base station floods
// this signal once empirical data says dissemination has finished.
type StartSignal struct {
	Src       NodeID
	ProgramID uint8
}

// Kind implements Packet.
func (*StartSignal) Kind() Kind { return KindStartSignal }

// Dest implements Packet.
func (*StartSignal) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (s *StartSignal) Source() NodeID { return s.Src }

func (s *StartSignal) appendPayload(b []byte) []byte {
	b = appendNodeID(b, s.Src)
	return append(b, s.ProgramID)
}

func (s *StartSignal) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	s.Src = r.nodeID()
	s.ProgramID = r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed start signal payload (%d bytes)", len(b))
	}
	return nil
}
