package packet

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mnp/internal/bitvec"
)

func samplePackets() []Packet {
	miss := bitvec.MustNew(128)
	miss.Set(0)
	miss.Set(77)
	miss.Set(127)
	pageMiss := bitvec.MustNew(48)
	pageMiss.Set(3)
	return []Packet{
		&Advertise{Src: 7, ProgramID: 1, ProgramSegments: 10, SegID: 3, SegNominal: 128, TotalPackets: 1280, ReqCtr: 4},
		&DownloadRequest{Src: 9, DestID: 7, ProgramID: 1, SegID: 3, SegPackets: 128, EchoReqCtr: 4, Missing: miss},
		&DownloadRequest{Src: 9, DestID: 7, ProgramID: 1, SegID: 3, SegPackets: 128, EchoReqCtr: 4},
		&StartDownload{Src: 7, ProgramID: 1, SegID: 3, SegPackets: 128},
		&Data{Src: 7, ProgramID: 1, SegID: 3, PacketID: 77, Payload: bytes.Repeat([]byte{0xAB}, 22)},
		&EndDownload{Src: 7, ProgramID: 1, SegID: 3},
		&Query{Src: 7, ProgramID: 1, SegID: 3},
		&RepairRequest{Src: 9, DestID: 7, ProgramID: 1, SegID: 3, PacketID: 12},
		&StartSignal{Src: 0, ProgramID: 1},
		&DelugeAdv{Src: 2, ProgramID: 1, Version: 2, NumPages: 12, HavePages: 5, PagePackets: 48, TotalPackets: 560},
		&DelugeReq{Src: 3, DestID: 2, ProgramID: 1, Page: 5, PagePackets: 48, Missing: pageMiss},
		&DelugeReq{Src: 3, DestID: 2, ProgramID: 1, Page: 5, PagePackets: 48},
		&DelugeData{Src: 2, ProgramID: 1, Page: 5, PacketID: 3, Payload: bytes.Repeat([]byte{1}, 22)},
		&MoapPublish{Src: 4, ProgramID: 1, Version: 2, Total: 640},
		&MoapSubscribe{Src: 5, DestID: 4, ProgramID: 1},
		&MoapData{Src: 4, ProgramID: 1, Seq: 639, Total: 640, Payload: bytes.Repeat([]byte{2}, 22)},
		&MoapNak{Src: 5, DestID: 4, ProgramID: 1, Seq: 101},
		&XnpData{Src: 0, ProgramID: 1, Seq: 10, Total: 640, Payload: bytes.Repeat([]byte{3}, 22)},
		&XnpQueryStatus{Src: 0, ProgramID: 1},
		&XnpStatus{Src: 6, DestID: 0, ProgramID: 1, Seq: XnpStatusComplete},
		&GossipAdv{Src: 8, ProgramID: 1, Segments: 5, SegPackets: 128, TotalPackets: 560, PayloadLen: 22, Tail: 9, CompleteSegs: 2, Have: 40},
		&GossipData{Src: 8, ProgramID: 1, Seg: 3, Pkt: 41, Payload: bytes.Repeat([]byte{4}, 22)},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, p := range samplePackets() {
		t.Run(fmt.Sprintf("%s", p.Kind()), func(t *testing.T) {
			frame := Encode(p)
			got, err := Decode(frame)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !packetsEqual(p, got) {
				t.Fatalf("round trip mismatch:\n  sent %#v\n  got  %#v", p, got)
			}
		})
	}
}

// packetsEqual compares two packets structurally, treating bitvec
// fields by Equal.
func packetsEqual(a, b Packet) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch x := a.(type) {
	case *DownloadRequest:
		y := b.(*DownloadRequest)
		if (x.Missing == nil) != (y.Missing == nil) {
			return false
		}
		if x.Missing != nil && !x.Missing.Equal(y.Missing) {
			return false
		}
		xc, yc := *x, *y
		xc.Missing, yc.Missing = nil, nil
		return reflect.DeepEqual(xc, yc)
	case *DelugeReq:
		y := b.(*DelugeReq)
		if (x.Missing == nil) != (y.Missing == nil) {
			return false
		}
		if x.Missing != nil && !x.Missing.Equal(y.Missing) {
			return false
		}
		xc, yc := *x, *y
		xc.Missing, yc.Missing = nil, nil
		return reflect.DeepEqual(xc, yc)
	default:
		return reflect.DeepEqual(a, b)
	}
}

func TestWireSizeMatchesEncodedLength(t *testing.T) {
	for _, p := range samplePackets() {
		if got, want := WireSize(p), len(Encode(p)); got != want {
			t.Errorf("%s: WireSize = %d, len(Encode) = %d", p.Kind(), got, want)
		}
	}
}

func TestDataFrameMatchesMicaTiming(t *testing.T) {
	// A 22-byte data payload plus MNP data header (src 2, program 1,
	// seg 1, pkt 1) plus framing must land on the 34-byte TOS frame the
	// timing model assumes (~14 ms at 19.2 kbps).
	d := &Data{Src: 1, ProgramID: 1, SegID: 1, PacketID: 1, Payload: make([]byte, 22)}
	if got := WireSize(d); got != 34 {
		t.Fatalf("data frame = %d bytes, want 34", got)
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	frame := Encode(&Advertise{Src: 1, ProgramID: 1, ProgramSegments: 1, SegID: 1, SegNominal: 8, TotalPackets: 8})

	short := frame[:3]
	if _, err := Decode(short); err == nil {
		t.Error("short frame accepted")
	}

	flipped := append([]byte(nil), frame...)
	flipped[6] ^= 0x01
	if _, err := Decode(flipped); err == nil {
		t.Error("bit-flipped frame accepted (CRC should fail)")
	}

	badKind := append([]byte(nil), frame...)
	badKind[2] = 0xEE
	badKind = reCRC(badKind)
	if _, err := Decode(badKind); err == nil {
		t.Error("unknown kind accepted")
	}

	badLen := append([]byte(nil), frame...)
	badLen[4] = badLen[4] + 1
	badLen = reCRC(badLen)
	if _, err := Decode(badLen); err == nil {
		t.Error("wrong length field accepted")
	}
}

// reCRC recomputes the trailing CRC so that only the targeted field is
// invalid.
func reCRC(frame []byte) []byte {
	body := frame[:len(frame)-2]
	c := crc16(body)
	frame[len(frame)-2] = byte(c >> 8)
	frame[len(frame)-1] = byte(c)
	return frame
}

func TestDecodePayloadLengthValidation(t *testing.T) {
	// Every fixed-size message must reject a truncated payload.
	msgs := []Packet{
		&Advertise{}, &StartDownload{}, &EndDownload{}, &Query{},
		&RepairRequest{}, &StartSignal{}, &DelugeAdv{}, &MoapPublish{},
		&MoapSubscribe{}, &MoapNak{}, &XnpQueryStatus{}, &XnpStatus{},
		&Data{}, &DownloadRequest{}, &DelugeReq{}, &DelugeData{},
		&MoapData{}, &XnpData{},
	}
	for _, m := range msgs {
		if err := m.decodePayload([]byte{1}); err == nil {
			t.Errorf("%s accepted 1-byte payload", m.Kind())
		}
	}
}

func TestClassOfCoversAllKinds(t *testing.T) {
	tests := []struct {
		kind Kind
		want Class
	}{
		{KindAdvertise, ClassAdvertisement},
		{KindDelugeAdv, ClassAdvertisement},
		{KindMoapPublish, ClassAdvertisement},
		{KindDownloadRequest, ClassRequest},
		{KindDelugeReq, ClassRequest},
		{KindMoapSubscribe, ClassRequest},
		{KindMoapNak, ClassRequest},
		{KindRepairRequest, ClassRequest},
		{KindRlncAdv, ClassAdvertisement},
		{KindGossipAdv, ClassAdvertisement},
		{KindData, ClassData},
		{KindDelugeData, ClassData},
		{KindMoapData, ClassData},
		{KindXnpData, ClassData},
		{KindRlncData, ClassData},
		{KindGossipData, ClassData},
		{KindStartDownload, ClassControl},
		{KindEndDownload, ClassControl},
		{KindQuery, ClassControl},
		{KindStartSignal, ClassControl},
		{KindXnpQueryStatus, ClassControl},
		{KindXnpStatus, ClassControl},
	}
	for _, tt := range tests {
		if got := ClassOf(tt.kind); got != tt.want {
			t.Errorf("ClassOf(%s) = %s, want %s", tt.kind, got, tt.want)
		}
	}
}

func TestKindAndClassStrings(t *testing.T) {
	for _, p := range samplePackets() {
		if p.Kind().String() == "" {
			t.Errorf("empty name for kind %d", p.Kind())
		}
	}
	if Kind(250).String() != "Kind(250)" {
		t.Errorf("unknown kind string = %q", Kind(250).String())
	}
	for _, c := range []Class{ClassControl, ClassAdvertisement, ClassRequest, ClassData, Class(99)} {
		if c.String() == "" {
			t.Errorf("empty class string for %d", c)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(5).String(); got != "n5" {
		t.Errorf("NodeID(5) = %q", got)
	}
	if got := Broadcast.String(); got != "bcast" {
		t.Errorf("Broadcast = %q", got)
	}
}

func TestDecodeGarbageNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		// Decode must fail gracefully or produce a valid packet, never
		// panic.
		p, err := Decode(buf)
		if err == nil && p == nil {
			t.Fatal("nil packet with nil error")
		}
	}
}

// Property: any Data payload round-trips byte-for-byte.
func TestQuickDataPayloadRoundTrip(t *testing.T) {
	f := func(src uint16, seg, pkt uint8, payload []byte) bool {
		if len(payload) > 200 {
			payload = payload[:200]
		}
		d := &Data{Src: NodeID(src), ProgramID: 1, SegID: seg, PacketID: pkt, Payload: payload}
		got, err := Decode(Encode(d))
		if err != nil {
			return false
		}
		gd, ok := got.(*Data)
		if !ok {
			return false
		}
		return gd.SegID == seg && gd.PacketID == pkt && gd.Src == NodeID(src) &&
			bytes.Equal(gd.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a download request's MissingVector survives the trip for
// any segment size.
func TestQuickDownloadRequestMissingRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%bitvec.MaxBits + 1
		rng := rand.New(rand.NewSource(seed))
		miss := bitvec.MustNew(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				miss.Set(i)
			}
		}
		r := &DownloadRequest{
			Src: 3, DestID: 4, ProgramID: 1, SegID: 2,
			SegPackets: uint8(n), EchoReqCtr: 1, Missing: miss,
		}
		got, err := Decode(Encode(r))
		if err != nil {
			return false
		}
		gr, ok := got.(*DownloadRequest)
		if !ok || gr.Missing == nil {
			return false
		}
		return gr.Missing.Equal(miss)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeData(b *testing.B) {
	d := &Data{Src: 1, ProgramID: 1, SegID: 1, PacketID: 1, Payload: make([]byte, 22)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Encode(d)
	}
}

func BenchmarkDecodeData(b *testing.B) {
	frame := Encode(&Data{Src: 1, ProgramID: 1, SegID: 1, PacketID: 1, Payload: make([]byte, 22)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
