package packet

import "fmt"

// GossipAdv is the gossip protocol's periodic beacon, GCP-style: every
// node keeps announcing how far its stored image extends, and hearing a
// beacon that lags your own is the only trigger for pushing data — no
// sender election, no request round trips, so the exchange survives
// neighborhoods that dissolve and reform under mobility. The beacon
// carries the full image geometry so a late-joining or just-arrived
// node bootstraps from a single overheard frame.
type GossipAdv struct {
	Src          NodeID
	ProgramID    uint8
	Segments     uint8  // segments in the image
	SegPackets   uint8  // packets per full segment
	TotalPackets uint16 // packets in the whole image
	PayloadLen   uint8  // bytes per data payload
	Tail         uint8  // bytes in the image's final packet
	CompleteSegs uint8  // segments Src holds completely
	Have         uint8  // packets Src holds of segment CompleteSegs+1
}

// Kind implements Packet.
func (*GossipAdv) Kind() Kind { return KindGossipAdv }

// Dest implements Packet.
func (*GossipAdv) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *GossipAdv) Source() NodeID { return a.Src }

func (a *GossipAdv) appendPayload(b []byte) []byte {
	b = appendNodeID(b, a.Src)
	b = append(b, a.ProgramID, a.Segments, a.SegPackets)
	b = appendU16(b, a.TotalPackets)
	return append(b, a.PayloadLen, a.Tail, a.CompleteSegs, a.Have)
}

func (a *GossipAdv) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	a.Src = r.nodeID()
	a.ProgramID, a.Segments, a.SegPackets = r.u8(), r.u8(), r.u8()
	a.TotalPackets = r.u16()
	a.PayloadLen, a.Tail, a.CompleteSegs, a.Have = r.u8(), r.u8(), r.u8(), r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed gossip adv payload (%d bytes)", len(b))
	}
	return nil
}

// GossipData carries one uncoded image packet, addressed by (segment,
// packet) exactly like MNP's Data — the gossip rumor being spread.
type GossipData struct {
	Src       NodeID
	ProgramID uint8
	Seg       uint8 // 1-based segment
	Pkt       uint8 // 1-based packet within the segment
	Payload   []byte
}

// Kind implements Packet.
func (*GossipData) Kind() Kind { return KindGossipData }

// Dest implements Packet.
func (*GossipData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *GossipData) Source() NodeID { return d.Src }

func (d *GossipData) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID, d.Seg, d.Pkt)
	return append(b, d.Payload...)
}

func (d *GossipData) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID, d.Seg, d.Pkt = r.u8(), r.u8(), r.u8()
	rest := r.rest()
	if r.failed {
		return fmt.Errorf("malformed gossip data payload (%d bytes)", len(b))
	}
	d.Payload = append(d.Payload[:0], rest...)
	return nil
}
