package packet

import "fmt"

// RlncAdv is the rateless-coding advertisement: instead of MNP's
// MissingVector round trips, a node broadcasts how far it has decoded —
// complete segments plus the Gaussian-elimination rank of the segment
// in progress — and neighbors that are ahead respond with more coded
// packets. The advertisement also carries the full image geometry so a
// rebooted or late-joining node can bootstrap without a request.
type RlncAdv struct {
	Src          NodeID
	ProgramID    uint8
	Segments     uint8  // segments in the image
	SegPackets   uint8  // packets per full segment (coefficient width)
	TotalPackets uint16 // packets in the whole image
	PayloadLen   uint8  // bytes per coded payload (image payload size)
	Tail         uint8  // bytes in the image's final packet
	CompleteSegs uint8  // segments Src has fully decoded and stored
	Rank         uint8  // decode rank of segment CompleteSegs+1
}

// Kind implements Packet.
func (*RlncAdv) Kind() Kind { return KindRlncAdv }

// Dest implements Packet.
func (*RlncAdv) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (a *RlncAdv) Source() NodeID { return a.Src }

func (a *RlncAdv) appendPayload(b []byte) []byte {
	b = appendNodeID(b, a.Src)
	b = append(b, a.ProgramID, a.Segments, a.SegPackets)
	b = appendU16(b, a.TotalPackets)
	return append(b, a.PayloadLen, a.Tail, a.CompleteSegs, a.Rank)
}

func (a *RlncAdv) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	a.Src = r.nodeID()
	a.ProgramID, a.Segments, a.SegPackets = r.u8(), r.u8(), r.u8()
	a.TotalPackets = r.u16()
	a.PayloadLen, a.Tail, a.CompleteSegs, a.Rank = r.u8(), r.u8(), r.u8(), r.u8()
	if !r.ok() {
		return fmt.Errorf("malformed rlnc adv payload (%d bytes)", len(b))
	}
	return nil
}

// RlncData carries one random linear combination of segment Seg's
// packets: Payload = sum_i Coeffs[i] * packet_i over GF(256), with the
// coefficient vector carried in-frame so any K innovative receptions —
// from any mix of senders — decode the segment.
type RlncData struct {
	Src       NodeID
	ProgramID uint8
	Seg       uint8  // 1-based segment
	Coeffs    []byte // K coefficients, one per packet of the segment
	Payload   []byte // coded payload, padded to the image payload size
}

// Kind implements Packet.
func (*RlncData) Kind() Kind { return KindRlncData }

// Dest implements Packet.
func (*RlncData) Dest() NodeID { return Broadcast }

// Source implements Packet.
func (d *RlncData) Source() NodeID { return d.Src }

func (d *RlncData) appendPayload(b []byte) []byte {
	b = appendNodeID(b, d.Src)
	b = append(b, d.ProgramID, d.Seg, uint8(len(d.Coeffs)))
	b = append(b, d.Coeffs...)
	return append(b, d.Payload...)
}

func (d *RlncData) decodePayload(b []byte) error {
	r := payloadReader{b: b}
	d.Src = r.nodeID()
	d.ProgramID, d.Seg = r.u8(), r.u8()
	k := int(r.u8())
	rest := r.rest()
	if r.failed || len(rest) < k {
		return fmt.Errorf("malformed rlnc data payload (%d bytes)", len(b))
	}
	d.Coeffs = append(d.Coeffs[:0], rest[:k]...)
	d.Payload = append(d.Payload[:0], rest[k:]...)
	return nil
}
