package campaign

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"mnp/internal/stats"
)

// Report renders the campaign comparison: one row per cell, then
// per-(protocol, topology, fault plan) aggregates across seeds. The
// output is a deterministic function of the plan and results — results
// are sorted by key and every number comes from a deterministic
// simulation — so two runs of the same plan produce identical bytes.
func Report(p *Plan, results []CellResult) string {
	sorted := append([]CellResult(nil), results...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })

	var b strings.Builder
	faultAxis := len(p.FaultPlans) > 1
	mobAxis := len(p.Mobilities) > 0
	fmt.Fprintf(&b, "campaign %s: %d cells = %d protocols x %d seeds x %d topologies",
		p.Name, len(sorted), len(p.Protocols), len(p.Seeds), len(p.Topologies))
	if mobAxis {
		fmt.Fprintf(&b, " x %d mobilities", len(p.Mobilities))
	}
	if faultAxis {
		fmt.Fprintf(&b, " x %d fault plans", len(p.FaultPlans))
	}
	b.WriteString("\n\n")

	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "cell\tnodes\tdone\ttime\ttx\trx\tcoll\tradio-on\tenergy(nAh)")
	for _, r := range sorted {
		if r.Err != "" {
			fmt.Fprintf(tw, "%s\t%d\t%d/%d\tERROR\t\t\t\t\t%s\n", r.Key, r.Nodes, r.Covered, r.Nodes, r.Err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d/%d\t%v\t%d\t%d\t%d\t%v\t%.1f\n",
			r.Key, r.Nodes, r.Covered, r.Nodes, r.Time(),
			r.Tx, r.Rx, r.Collisions,
			(time.Duration(r.RadioOnMS) * time.Millisecond).Round(time.Second),
			r.EnergyNAh)
	}
	tw.Flush()

	b.WriteString("\naggregates over seeds:\n")
	tw = tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	hdr := []string{"protocol", "topology"}
	if mobAxis {
		hdr = append(hdr, "mobility")
	}
	if faultAxis {
		hdr = append(hdr, "faults")
	}
	hdr = append(hdr, "cells", "done", "time mean", "p50", "p90", "tx mean", "energy mean")
	fmt.Fprintln(tw, strings.Join(hdr, "\t"))
	for _, g := range groupCells(sorted) {
		times := make([]float64, 0, len(g.cells))
		txs := make([]float64, 0, len(g.cells))
		energies := make([]float64, 0, len(g.cells))
		done := 0
		for _, r := range g.cells {
			if r.Err != "" {
				continue
			}
			times = append(times, float64(r.TimeMS))
			txs = append(txs, float64(r.Tx))
			energies = append(energies, r.EnergyNAh)
			if r.Completed {
				done++
			}
		}
		cols := []string{g.protocol, g.topology}
		if mobAxis {
			cols = append(cols, g.mobility)
		}
		if faultAxis {
			cols = append(cols, faultLabel(g.faults))
		}
		if len(times) == 0 {
			fmt.Fprintf(tw, "%s\t%d\t%d\tall failed\t\t\t\t\n", strings.Join(cols, "\t"), len(g.cells), done)
			continue
		}
		p50, _ := stats.Percentile(times, 50)
		p90, _ := stats.Percentile(times, 90)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%v\t%v\t%.1f\t%.1f\n",
			strings.Join(cols, "\t"), len(g.cells), done,
			msDuration(stats.Mean(times)), msDuration(p50), msDuration(p90),
			stats.Mean(txs), stats.Mean(energies))
	}
	tw.Flush()
	return b.String()
}

// group is one (protocol, topology, mobility, faults) aggregate bucket.
type group struct {
	protocol, topology, mobility, faults string
	cells                                []CellResult
}

// groupCells buckets results by everything but the seed, ordered by
// bucket key.
func groupCells(sorted []CellResult) []group {
	byKey := map[string]*group{}
	var order []string
	for _, r := range sorted {
		key := r.Protocol + "\x00" + r.Topology + "\x00" + r.Mobility + "\x00" + r.Faults
		g, ok := byKey[key]
		if !ok {
			g = &group{protocol: r.Protocol, topology: r.Topology, mobility: r.Mobility, faults: r.Faults}
			byKey[key] = g
			order = append(order, key)
		}
		g.cells = append(g.cells, r)
	}
	sort.Strings(order)
	out := make([]group, len(order))
	for i, key := range order {
		out[i] = *byKey[key]
	}
	return out
}

func faultLabel(spec string) string {
	if spec == "" {
		return "none"
	}
	return spec
}

// msDuration renders a float millisecond quantity as a duration,
// rounded to the millisecond so float noise cannot leak into report
// bytes.
func msDuration(ms float64) time.Duration {
	return (time.Duration(ms*float64(time.Millisecond))).Round(time.Millisecond)
}
