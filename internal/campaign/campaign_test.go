package campaign

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// planDoc is a small but full-width campaign: 2 protocols x 2 seeds x
// 2 topologies = 8 cells, tiny images so the whole matrix runs in
// test time. XNP is absent on purpose: it is single-hop, so multihop
// topologies legitimately never reach full coverage under it.
const planDoc = `
version = 1
name = "test-campaign"
protocols = ["mnp", "deluge"]
seeds = [42, 7]
workers = 4

[[topologies]]
kind = "grid"
rows = 3
cols = 3

[[topologies]]
kind = "line"
n = 4

[scenario]
[scenario.run]
image_packets = 16
limit = "4h"
`

func parseTestPlan(t *testing.T, doc string) *Plan {
	t.Helper()
	p, err := ParsePlan([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExpand(t *testing.T) {
	p := parseTestPlan(t, planDoc)
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	// Deterministic order: protocols outermost, seeds innermost.
	wantKeys := []string{
		"mnp_s42_grid-3x3", "mnp_s7_grid-3x3", "mnp_s42_line-4", "mnp_s7_line-4",
		"deluge_s42_grid-3x3", "deluge_s7_grid-3x3", "deluge_s42_line-4", "deluge_s7_line-4",
	}
	for i, want := range wantKeys {
		if cells[i].Key != want {
			t.Errorf("cell %d key = %q, want %q", i, cells[i].Key, want)
		}
	}
	// Each cell's scenario is self-contained and pinned to its axis point.
	c := cells[5]
	if c.Scenario.Run.Seed != 7 || c.Scenario.Protocol.Name != "deluge" || c.Scenario.Topology.Kind != "grid" {
		t.Errorf("cell %s scenario mismatch: %+v", c.Key, c.Scenario)
	}
	if len(c.Scenario.Run.Seeds) != 0 {
		t.Errorf("cell scenario kept the seed sweep list")
	}
}

func TestExpandAxisDefaults(t *testing.T) {
	// No axes at all: the plan degenerates to the base scenario's
	// single cell.
	p := parseTestPlan(t, `
version = 1
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.run]
seed = 5
`)
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Key != "mnp_s5_grid-2x2" {
		t.Fatalf("degenerate plan expanded to %+v", cells)
	}
}

func TestExpandFaultAxis(t *testing.T) {
	p := parseTestPlan(t, `
version = 1
seeds = [1]
fault_plans = ["", "crash:3@60s"]
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
`)
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if cells[0].Key != "mnp_s1_grid-2x2_f0" || cells[0].Faults != "" {
		t.Errorf("fault cell 0 = %q faults %q", cells[0].Key, cells[0].Faults)
	}
	if cells[1].Key != "mnp_s1_grid-2x2_f1" || cells[1].Faults != "crash:3@60s" {
		t.Errorf("fault cell 1 = %q faults %q", cells[1].Key, cells[1].Faults)
	}
}

func TestPlanRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"bad version", `version = 2
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "version 2"},
		{"unknown protocol", `version = 1
protocols = ["warp"]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "unknown protocol"},
		{"duplicate protocol", `version = 1
protocols = ["mnp", "mnp"]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "duplicate protocol"},
		{"duplicate seed", `version = 1
seeds = [3, 3]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "duplicate seed"},
		{"no topology", `version = 1
seeds = [1]`, "no base topology"},
		{"bad fault plan", `version = 1
fault_plans = ["warp:9"]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "fault plan 0"},
		{"unknown plan key", `version = 1
protocls = ["mnp"]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2`, "protocls"},
		{"bad cell scenario", `version = 1
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[[scenario.protocol.tune]]
nodes = "99"
[scenario.protocol.tune.options]
no_sleep = true`, "tune rule"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan([]byte(tc.doc))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestProtocolOptionRouting checks which cells inherit the base
// scenario's options and which get per-protocol overrides.
func TestProtocolOptionRouting(t *testing.T) {
	p := parseTestPlan(t, `
version = 1
protocols = ["mnp", "deluge", "xnp"]
seeds = [1]
[protocol_options.deluge]
page_packets = 32
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.protocol.options]
no_sleep = true
`)
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]Cell{}
	for _, c := range cells {
		byProto[c.Protocol] = c
	}
	if got := byProto["mnp"].Scenario.Protocol.Options["no_sleep"]; got != true {
		t.Errorf("mnp cell lost the base options: %v", byProto["mnp"].Scenario.Protocol.Options)
	}
	// TOML integers ride through the generic-map round trip as float64.
	if got := byProto["deluge"].Scenario.Protocol.Options["page_packets"]; got != float64(32) {
		t.Errorf("deluge cell missing its override: %v", byProto["deluge"].Scenario.Protocol.Options)
	}
	if opts := byProto["xnp"].Scenario.Protocol.Options; opts != nil {
		t.Errorf("xnp cell inherited mnp options: %v", opts)
	}
}

// TestRunCampaignAndResume is the end-to-end contract: a run stopped
// mid-campaign resumes from the checkpoint without re-running finished
// cells, and the final report is byte-identical to an uninterrupted
// run of the same plan.
func TestRunCampaignAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("8-cell campaign in -short mode")
	}
	p := parseTestPlan(t, planDoc)

	// Reference: uninterrupted, no checkpoint dir.
	ref, err := (&Runner{Plan: p}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if ref.Executed != 8 || ref.Remaining != 0 || ref.Report == "" {
		t.Fatalf("reference run: %+v", ref)
	}
	for _, r := range ref.Results {
		if r.Err != "" {
			t.Fatalf("cell %s failed: %s", r.Key, r.Err)
		}
		if !r.Completed || r.Covered != r.Nodes {
			t.Errorf("cell %s did not complete: %d/%d", r.Key, r.Covered, r.Nodes)
		}
		if r.Tx == 0 || r.EnergyNAh == 0 {
			t.Errorf("cell %s has empty metrics: %+v", r.Key, r)
		}
	}

	// Interrupted: stop after 3 cells, then resume.
	dir := t.TempDir()
	first, err := (&Runner{Plan: p, Dir: dir, MaxCells: 3}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.Executed != 3 || first.Remaining != 5 || first.Report != "" {
		t.Fatalf("interrupted run: %+v", first)
	}
	if _, err := os.Stat(filepath.Join(dir, ReportFile)); !os.IsNotExist(err) {
		t.Error("interrupted run wrote a report")
	}
	second, err := (&Runner{Plan: p, Dir: dir}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != 3 || second.Executed != 5 || second.Remaining != 0 {
		t.Fatalf("resumed run: resumed=%d executed=%d remaining=%d",
			second.Resumed, second.Executed, second.Remaining)
	}
	if second.Report != ref.Report {
		t.Errorf("resumed report differs from uninterrupted report:\n--- resumed\n%s\n--- reference\n%s",
			second.Report, ref.Report)
	}
	onDisk, err := os.ReadFile(filepath.Join(dir, ReportFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != ref.Report {
		t.Error("report.txt differs from the in-memory report")
	}

	// A third run finds everything done and re-renders the same bytes.
	third, err := (&Runner{Plan: p, Dir: dir}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if third.Executed != 0 || third.Resumed != 8 {
		t.Fatalf("completed-campaign rerun executed %d cells", third.Executed)
	}
	if third.Report != ref.Report {
		t.Error("re-rendered report differs")
	}
}

// TestReportDeterministicAcrossWorkerCounts runs the same plan at 1
// and 4 workers; the reports must be byte-identical.
func TestReportDeterministicAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated campaigns in -short mode")
	}
	p := parseTestPlan(t, `
version = 1
name = "det"
protocols = ["mnp", "deluge"]
seeds = [42, 7]
[scenario]
[scenario.topology]
kind = "grid"
rows = 3
cols = 3
[scenario.run]
image_packets = 16
limit = "4h"
`)
	var reports []string
	for _, workers := range []int{1, 4} {
		out, err := (&Runner{Plan: p, Workers: workers}).Run()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, out.Report)
	}
	if reports[0] != reports[1] {
		t.Errorf("report depends on worker count:\n--- 1 worker\n%s\n--- 4 workers\n%s", reports[0], reports[1])
	}
}

// TestCheckpointRejectsForeignPlan: resuming with a different plan in
// the same directory must fail loudly, not merge.
func TestCheckpointRejectsForeignPlan(t *testing.T) {
	dir := t.TempDir()
	p := parseTestPlan(t, `
version = 1
seeds = [1]
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.run]
image_packets = 4
limit = "2h"
`)
	if _, err := (&Runner{Plan: p, Dir: dir}).Run(); err != nil {
		t.Fatal(err)
	}
	other := parseTestPlan(t, `
version = 1
seeds = [2]
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.run]
image_packets = 4
limit = "2h"
`)
	_, err := (&Runner{Plan: other, Dir: dir}).Run()
	if err == nil || !strings.Contains(err.Error(), "different plan") {
		t.Fatalf("foreign checkpoint accepted: %v", err)
	}
}

// TestCheckpointToleratesTornTail: a line half-written by a kill is
// dropped; the cell it described simply re-runs.
func TestCheckpointToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	p := parseTestPlan(t, `
version = 1
seeds = [1, 2]
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.run]
image_packets = 4
limit = "2h"
`)
	path := filepath.Join(dir, CheckpointFile)
	hdr, _ := json.Marshal(checkpointHeader{Campaign: p.Name, Schema: Version, Fingerprint: p.Fingerprint()})
	good, _ := json.Marshal(CellResult{Key: "mnp_s1_grid-2x2", Protocol: "mnp", Seed: 1,
		Topology: "grid-2x2", Nodes: 4, Covered: 4, Completed: true, TimeMS: 1000, Tx: 10, Rx: 10})
	torn := `{"key":"mnp_s2_grid-2`
	if err := os.WriteFile(path, []byte(string(hdr)+"\n"+string(good)+"\n"+torn), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := (&Runner{Plan: p, Dir: dir}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Resumed != 1 || out.Executed != 1 {
		t.Fatalf("torn-tail resume: resumed=%d executed=%d", out.Resumed, out.Executed)
	}
	// The resumed (synthetic) cell keeps its checkpointed numbers.
	for _, r := range out.Results {
		if r.Key == "mnp_s1_grid-2x2" && r.TimeMS != 1000 {
			t.Errorf("checkpointed cell was re-run: %+v", r)
		}
	}
}

// TestCheckpointRejectsStaleRecords: a checkpoint whose header matches
// the plan but whose body holds a record for a cell the plan does not
// expand to (a hand-edited file, or records spliced in from another
// campaign) must fail naming the offending key — not silently re-run
// or carry the foreign result into the report.
func TestCheckpointRejectsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	p := parseTestPlan(t, `
version = 1
seeds = [1, 2]
[scenario]
[scenario.topology]
kind = "grid"
rows = 2
cols = 2
[scenario.run]
image_packets = 4
limit = "2h"
`)
	path := filepath.Join(dir, CheckpointFile)
	hdr, _ := json.Marshal(checkpointHeader{Campaign: p.Name, Schema: Version, Fingerprint: p.Fingerprint()})
	good, _ := json.Marshal(CellResult{Key: "mnp_s1_grid-2x2", Protocol: "mnp", Seed: 1,
		Topology: "grid-2x2", Nodes: 4, Covered: 4, Completed: true, TimeMS: 1000, Tx: 10, Rx: 10})
	foreign, _ := json.Marshal(CellResult{Key: "deluge_s9_grid-5x5", Protocol: "deluge", Seed: 9,
		Topology: "grid-5x5", Nodes: 25, Covered: 25, Completed: true, TimeMS: 2000, Tx: 99, Rx: 99})
	content := string(hdr) + "\n" + string(good) + "\n" + string(foreign) + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := (&Runner{Plan: p, Dir: dir}).Run()
	if err == nil || !strings.Contains(err.Error(), "deluge_s9_grid-5x5") {
		t.Fatalf("stale checkpoint record accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "stale") {
		t.Fatalf("error does not explain the failure: %v", err)
	}
}

func TestFingerprintStable(t *testing.T) {
	a := parseTestPlan(t, planDoc)
	b := parseTestPlan(t, planDoc)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("same document, different fingerprints")
	}
	c := parseTestPlan(t, strings.Replace(planDoc, "seeds = [42, 7]", "seeds = [42, 8]", 1))
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different plans share a fingerprint")
	}
}
