// Package campaign expands a declarative experiment matrix — protocol
// × seed × topology × fault plan over a base scenario — into a run
// set, executes it on a bounded worker pool, checkpoints each finished
// cell to NDJSON so an interrupted campaign resumes without re-running
// completed work, and renders a deterministic aggregated comparison
// report. It is the batch layer above internal/scenario: a scenario
// describes one deployment, a campaign sweeps a grid of them.
package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"mnp/internal/faults"
	"mnp/internal/protoreg"
	"mnp/internal/scenario"
)

// Version is the campaign plan schema version.
const Version = 1

// Plan is a campaign document: a base scenario plus the axes to sweep.
// Every axis is optional; a missing axis contributes the base
// scenario's own value as its single point, so a plan degenerates
// gracefully down to a single cell.
type Plan struct {
	// Version is the schema version; must be 1.
	Version int `json:"version"`
	// Name labels the report and the checkpoint header.
	Name string `json:"name,omitempty"`
	// Protocols is the protocol axis (protoreg names: mnp, deluge,
	// moap, xnp). Default: the base scenario's protocol.
	Protocols []string `json:"protocols,omitempty"`
	// Seeds is the seed axis. Default: the base scenario's seed list.
	Seeds []int64 `json:"seeds,omitempty"`
	// FaultPlans is the fault axis, in the internal/faults spec
	// grammar; "" is a valid point meaning no faults. Default: the
	// base scenario's fault spec as the single point.
	FaultPlans []string `json:"fault_plans,omitempty"`
	// Topologies is the topology axis. Default: the base scenario's
	// topology.
	Topologies []scenario.Topology `json:"topologies,omitempty"`
	// Mobilities is the mobility axis (use kind = "static" for a
	// no-motion point). Default: the base scenario's mobility section
	// as the single point, with no mobility label in cell keys — so
	// plans without the axis keep their historical keys and resume
	// cleanly from old checkpoints.
	Mobilities []scenario.Mobility `json:"mobilities,omitempty"`
	// ProtocolOptions maps a protocol name to the option set its cells
	// run with, overriding the base scenario's options for that
	// protocol. Protocols without an entry inherit the base options
	// when they match the base protocol, package defaults otherwise.
	ProtocolOptions map[string]map[string]any `json:"protocol_options,omitempty"`
	// Workers bounds campaign parallelism (cells run concurrently, one
	// single-threaded simulation each). 0 picks GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Scenario is the base deployment every cell derives from.
	Scenario scenario.Scenario `json:"scenario"`
}

// Cell is one point of the expanded matrix: a fully derived scenario
// plus the axis coordinates that produced it.
type Cell struct {
	// Key identifies the cell across runs — checkpoint entries are
	// keyed by it, so it is a pure function of the axis coordinates.
	Key      string
	Protocol string
	Seed     int64
	Topology string // scenario topology label, e.g. "grid-4x4"
	Mobility string // mobility label ("" without a mobility axis)
	Faults   string
	Scenario *scenario.Scenario
}

// ParsePlan reads a campaign plan from TOML (default) or JSON (first
// byte '{'), normalizes the axes, and validates everything checkable
// without running: schema version, axis duplicates, protocol names,
// fault grammars, and — via Expand — every derived cell scenario.
func ParsePlan(data []byte) (*Plan, error) {
	generic, err := scenario.ParseDocument(data)
	if err != nil {
		return nil, err
	}
	var p Plan
	if err := scenario.DecodeStrict(generic, &p); err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	if _, err := p.Expand(); err != nil {
		return nil, err
	}
	return &p, nil
}

// PlanForScenario wraps a single scenario as a degenerate campaign
// sweeping only the given seeds — how mnpexp's seed fan-out rides the
// campaign machinery.
func PlanForScenario(sc scenario.Scenario, seeds []int64, workers int) (*Plan, error) {
	name := sc.Name
	if name == "" {
		name = "scenario-sweep"
	}
	p := &Plan{
		Version:  Version,
		Name:     name,
		Seeds:    seeds,
		Workers:  workers,
		Scenario: sc,
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	if _, err := p.Expand(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParsePlanFile reads and parses path.
func ParsePlanFile(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := ParsePlan(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// normalize fills defaulted axes from the base scenario and rejects
// malformed plans.
func (p *Plan) normalize() error {
	if p.Version != Version {
		return fmt.Errorf("campaign %s: version %d is not supported (want %d)", p.Name, p.Version, Version)
	}
	if p.Name == "" {
		p.Name = "campaign"
	}
	// The nested base scenario rides on the plan's version so authors
	// do not repeat it.
	if p.Scenario.Version == 0 {
		p.Scenario.Version = scenario.Version
	}
	if len(p.Protocols) == 0 {
		p.Protocols = []string{p.baseProtocol()}
	}
	seen := map[string]bool{}
	for i, name := range p.Protocols {
		name = strings.ToLower(strings.TrimSpace(name))
		if _, ok := protoreg.Lookup(name); !ok {
			return fmt.Errorf("campaign %s: unknown protocol %q (have %s)",
				p.Name, name, strings.Join(protoreg.Names(), ", "))
		}
		if seen[name] {
			return fmt.Errorf("campaign %s: duplicate protocol %q", p.Name, name)
		}
		seen[name] = true
		p.Protocols[i] = name
	}
	for name := range p.ProtocolOptions {
		if _, ok := protoreg.Lookup(name); !ok {
			return fmt.Errorf("campaign %s: protocol_options for unknown protocol %q", p.Name, name)
		}
	}
	if len(p.Seeds) == 0 {
		p.Seeds = p.Scenario.SeedList()
	}
	seedSeen := map[int64]bool{}
	for _, s := range p.Seeds {
		if seedSeen[s] {
			return fmt.Errorf("campaign %s: duplicate seed %d", p.Name, s)
		}
		seedSeen[s] = true
	}
	if len(p.Topologies) == 0 {
		if p.Scenario.Topology.Kind == "" {
			return fmt.Errorf("campaign %s: no topology axis and no base topology", p.Name)
		}
		p.Topologies = []scenario.Topology{p.Scenario.Topology}
	}
	for i, spec := range p.FaultPlans {
		if spec == "" {
			continue
		}
		if _, err := faults.ParseSpec(spec); err != nil {
			return fmt.Errorf("campaign %s: fault plan %d: %w", p.Name, i, err)
		}
	}
	if p.Workers < 0 {
		return fmt.Errorf("campaign %s: workers %d is negative", p.Name, p.Workers)
	}
	return nil
}

// baseProtocol is the base scenario's effective protocol name.
func (p *Plan) baseProtocol() string {
	if p.Scenario.Protocol.Name == "" {
		return "mnp"
	}
	return strings.ToLower(p.Scenario.Protocol.Name)
}

// Expand materializes the matrix in deterministic order — protocols
// outermost, then topologies, then fault plans, then seeds — deriving
// and validating one scenario per cell. Cell keys must come out
// unique; colliding topology labels (two random placements of the same
// size, say) are reported as an error rather than silently merged.
func (p *Plan) Expand() ([]Cell, error) {
	faultAxis := p.FaultPlans
	if len(faultAxis) == 0 {
		faultAxis = []string{p.Scenario.Faults}
	}
	// The mobility axis defaults to the base scenario's section (possibly
	// none) as its single point, contributing no key segment — existing
	// plans keep their historical cell keys and checkpoints.
	mobAxis := []*scenario.Mobility{p.Scenario.Mobility}
	keyMobility := len(p.Mobilities) > 0
	if keyMobility {
		mobAxis = make([]*scenario.Mobility, len(p.Mobilities))
		for i := range p.Mobilities {
			mobAxis[i] = &p.Mobilities[i]
		}
	}
	cells := make([]Cell, 0, len(p.Protocols)*len(p.Topologies)*len(mobAxis)*len(faultAxis)*len(p.Seeds))
	keys := map[string]bool{}
	for _, proto := range p.Protocols {
		for _, topo := range p.Topologies {
			for _, mob := range mobAxis {
				for fi, faultSpec := range faultAxis {
					for _, seed := range p.Seeds {
						cell, err := p.derive(proto, topo, mob, keyMobility, fi, faultSpec, seed, len(p.FaultPlans) > 1)
						if err != nil {
							return nil, err
						}
						if keys[cell.Key] {
							return nil, fmt.Errorf("campaign %s: duplicate cell key %q (topology and mobility labels must be distinct)", p.Name, cell.Key)
						}
						keys[cell.Key] = true
						cells = append(cells, cell)
					}
				}
			}
		}
	}
	return cells, nil
}

// derive builds one cell's scenario from the base plus its axis
// coordinates.
func (p *Plan) derive(proto string, topo scenario.Topology, mob *scenario.Mobility, keyMobility bool, faultIdx int, faultSpec string, seed int64, keyFaults bool) (Cell, error) {
	sc := p.Scenario // value copy; shared maps/slices are read-only
	sc.Topology = topo
	sc.Mobility = mob
	sc.Run.Seed = seed
	sc.Run.Seeds = nil
	sc.Faults = faultSpec
	sc.Protocol.Name = proto

	// Options: an explicit per-protocol entry wins; otherwise the base
	// options carry over only to the base protocol (MNP knobs make no
	// sense on Deluge cells), and tune rules — MNP-only by definition —
	// ride along on the same condition.
	switch {
	case p.ProtocolOptions[proto] != nil:
		sc.Protocol.Options = p.ProtocolOptions[proto]
	case proto == p.baseProtocol():
		// keep base options
	default:
		sc.Protocol.Options = nil
	}
	if proto != "mnp" {
		sc.Protocol.Tune = nil
	}

	parts := []string{proto, fmt.Sprintf("s%d", seed), topo.Label()}
	mobLabel := ""
	if keyMobility {
		mobLabel = mob.Label()
		parts = append(parts, mobLabel)
	}
	if keyFaults {
		parts = append(parts, fmt.Sprintf("f%d", faultIdx))
	}
	key := strings.Join(parts, "_")
	sc.Name = key

	if err := sc.Validate(); err != nil {
		return Cell{}, fmt.Errorf("campaign %s: cell %s: %w", p.Name, key, err)
	}
	return Cell{
		Key:      key,
		Protocol: proto,
		Seed:     seed,
		Topology: topo.Label(),
		Mobility: mobLabel,
		Faults:   faultSpec,
		Scenario: &sc,
	}, nil
}

// Fingerprint hashes the normalized plan; the checkpoint header pins
// it so a resumed campaign cannot silently mix cells from two
// different plans. JSON encoding of the plan is deterministic (struct
// field order plus sorted map keys).
func (p *Plan) Fingerprint() string {
	buf, err := json.Marshal(p)
	if err != nil {
		// Plan came out of a JSON round-trip; marshaling cannot fail.
		panic(fmt.Sprintf("campaign: fingerprinting plan: %v", err))
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
