package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mnp/internal/experiment"
	"mnp/internal/packet"
)

// CellResult is one completed cell's outcome — everything the report
// needs, flattened into a checkpointable record.
type CellResult struct {
	Key      string `json:"key"`
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Topology string `json:"topology"`
	Mobility string `json:"mobility,omitempty"`
	Faults   string `json:"faults,omitempty"`

	// Nodes is the fleet size; Covered counts nodes holding the full
	// program when the run ended; Completed reports full coverage
	// within the time limit.
	Nodes     int  `json:"nodes"`
	Covered   int  `json:"covered"`
	Completed bool `json:"completed"`
	// TimeMS is the completion time in milliseconds (the time limit
	// when the run did not complete).
	TimeMS int64 `json:"time_ms"`
	// Whole-network frame totals.
	Tx         int `json:"tx"`
	Rx         int `json:"rx"`
	Collisions int `json:"collisions"`
	// RadioOnMS is radio-on time summed over nodes, in milliseconds.
	RadioOnMS int64 `json:"radio_on_ms"`
	// EnergyNAh is the fleet's radio + decode energy in nAh (summed
	// ledgers; decode is zero for uncoded protocols).
	EnergyNAh float64 `json:"energy_nah"`
	// Err records a failed cell (compile error, invariant violation).
	Err string `json:"err,omitempty"`
}

// Time returns the completion time as a duration.
func (r CellResult) Time() time.Duration { return time.Duration(r.TimeMS) * time.Millisecond }

// Runner executes a plan with per-cell checkpointing.
type Runner struct {
	Plan *Plan
	// Dir is the checkpoint directory; "" runs without checkpointing.
	// A cells.ndjson inside it records finished cells; re-running with
	// the same Dir resumes, skipping them. The final report lands in
	// report.txt.
	Dir string
	// Workers overrides the plan's worker bound when > 0.
	Workers int
	// MaxCells, when > 0, stops after executing that many new cells —
	// the hook CI and tests use to interrupt a campaign mid-flight and
	// exercise resume.
	MaxCells int
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// Outcome is what a Run produced.
type Outcome struct {
	// Cells is the full expanded matrix; Results holds the finished
	// cells sorted by key (all of them unless MaxCells stopped the
	// run early).
	Cells   []Cell
	Results []CellResult
	// Resumed counts cells loaded from the checkpoint; Executed counts
	// cells run by this invocation; Remaining counts cells still to do.
	Resumed, Executed, Remaining int
	// Report is the rendered comparison report, "" while cells remain.
	Report string
}

// checkpointHeader is the first line of cells.ndjson.
type checkpointHeader struct {
	Campaign    string `json:"campaign"`
	Schema      int    `json:"schema"`
	Fingerprint string `json:"fingerprint"`
}

// CheckpointFile is the NDJSON file inside Runner.Dir holding finished
// cells; ReportFile holds the final report.
const (
	CheckpointFile = "cells.ndjson"
	ReportFile     = "report.txt"
)

// Run expands the plan, skips cells the checkpoint already holds, runs
// the rest on the worker pool, and — once every cell is done — renders
// the report. The report is a deterministic function of the plan: the
// same bytes regardless of worker count, resume history, or cell
// finishing order.
func (r *Runner) Run() (*Outcome, error) {
	cells, err := r.Plan.Expand()
	if err != nil {
		return nil, err
	}
	done := map[string]CellResult{}
	var ckpt *checkpointWriter
	if r.Dir != "" {
		if err := os.MkdirAll(r.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign %s: %w", r.Plan.Name, err)
		}
		path := filepath.Join(r.Dir, CheckpointFile)
		done, err = loadCheckpoint(path, r.Plan)
		if err != nil {
			return nil, err
		}
		// A finished-cell record whose key the plan does not expand to
		// means the checkpoint and the plan disagree even though the
		// fingerprint line matched — a hand-edited file, or records
		// spliced in from another campaign. Resuming would silently
		// re-run some cells and carry foreign results into the report;
		// fail with the offending keys instead.
		var stale []string
		for key := range done {
			if !containsKey(cells, key) {
				stale = append(stale, key)
			}
		}
		if len(stale) > 0 {
			sort.Strings(stale)
			return nil, fmt.Errorf("campaign %s: %s holds %d cell(s) the plan does not expand to (%s) — the checkpoint is stale or was edited; use a fresh directory or delete it",
				r.Plan.Name, path, len(stale), strings.Join(stale, ", "))
		}
		ckpt, err = openCheckpoint(path, r.Plan, len(done) > 0)
		if err != nil {
			return nil, err
		}
		defer ckpt.Close()
	}

	pending := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if _, ok := done[c.Key]; !ok {
			pending = append(pending, c)
		}
	}
	stopped := 0
	if r.MaxCells > 0 && len(pending) > r.MaxCells {
		stopped = len(pending) - r.MaxCells
		pending = pending[:r.MaxCells]
	}
	r.logf("campaign %s: %d cells, %d resumed, %d to run",
		r.Plan.Name, len(cells), len(done), len(pending))

	executed := r.runPool(pending, ckpt)

	out := &Outcome{
		Cells:     cells,
		Resumed:   len(done),
		Executed:  len(executed),
		Remaining: stopped,
	}
	results := make([]CellResult, 0, len(done)+len(executed))
	for _, res := range done {
		results = append(results, res)
	}
	results = append(results, executed...)
	sort.Slice(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	out.Results = results

	if out.Remaining == 0 {
		out.Report = Report(r.Plan, results)
		if r.Dir != "" {
			path := filepath.Join(r.Dir, ReportFile)
			if err := os.WriteFile(path, []byte(out.Report), 0o644); err != nil {
				return nil, fmt.Errorf("campaign %s: %w", r.Plan.Name, err)
			}
		}
	}
	return out, nil
}

// runPool executes cells on the bounded pool, appending each finished
// cell to the checkpoint as it lands. Results come back indexed by
// cell, so the slice order is deterministic even though completion
// order is not.
func (r *Runner) runPool(pending []Cell, ckpt *checkpointWriter) []CellResult {
	if len(pending) == 0 {
		return nil
	}
	workers := r.Workers
	if workers == 0 {
		workers = r.Plan.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}
	out := make([]CellResult, len(pending))
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes checkpoint appends and progress lines
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res := RunCell(pending[i])
				out[i] = res
				mu.Lock()
				if ckpt != nil {
					ckpt.append(res)
				}
				r.logf("  %s: done=%d/%d time=%v tx=%d%s",
					res.Key, res.Covered, res.Nodes, res.Time(), res.Tx, errSuffix(res.Err))
				mu.Unlock()
			}
		}()
	}
	for i := range pending {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

func errSuffix(err string) string {
	if err == "" {
		return ""
	}
	return " ERROR: " + err
}

// RunCell compiles and runs one cell's scenario and condenses the run
// into a CellResult. Failures (compile errors, invariant violations)
// are recorded on the result, not returned — one broken cell must not
// sink a campaign.
func RunCell(c Cell) CellResult {
	out := CellResult{
		Key:      c.Key,
		Protocol: c.Protocol,
		Seed:     c.Seed,
		Topology: c.Topology,
		Mobility: c.Mobility,
		Faults:   c.Faults,
	}
	setup, err := c.Scenario.Compile()
	if err != nil {
		out.Err = err.Error()
		return out
	}
	res, err := experiment.Run(setup)
	if err != nil {
		out.Err = err.Error()
		return out
	}
	if verr := res.VerifyInvariants(); verr != nil {
		out.Err = "invariant: " + verr.Error()
	}
	until := res.CompletionTime
	if !res.Completed {
		until = res.Setup.Limit
	}
	snap := res.Collector.Snapshot(until)
	out.Nodes = snap.Nodes
	out.Covered = snap.Completed
	out.Completed = res.Completed
	out.TimeMS = until.Milliseconds()
	out.Tx = snap.Tx
	out.Rx = snap.Rx
	out.Collisions = snap.Collisions
	out.RadioOnMS = snap.RadioOnTotal.Milliseconds()
	for id := 0; id < snap.Nodes; id++ {
		l := res.Collector.Ledger(packet.NodeID(id), until)
		out.EnergyNAh += l.RadioCharge() + l.DecodeCharge()
	}
	return out
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

func containsKey(cells []Cell, key string) bool {
	for _, c := range cells {
		if c.Key == key {
			return true
		}
	}
	return false
}

// loadCheckpoint reads finished cells from path. A missing file is an
// empty checkpoint. The header must carry the plan's fingerprint — a
// stale directory from a different plan is an error, not a silent
// partial resume. A torn final line (the process was killed mid-append)
// is dropped; torn interior lines mean real corruption and fail.
func loadCheckpoint(path string, p *Plan) (map[string]CellResult, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]CellResult{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", p.Name, err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	done := map[string]CellResult{}
	if len(lines) == 0 || lines[0] == "" {
		return done, nil
	}
	var hdr checkpointHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		if len(lines) == 1 {
			return done, nil // torn header from a kill mid-write; start over
		}
		return nil, fmt.Errorf("campaign %s: %s: corrupt header: %w", p.Name, path, err)
	}
	if hdr.Schema != Version {
		return nil, fmt.Errorf("campaign %s: %s: checkpoint schema %d (want %d)", p.Name, path, hdr.Schema, Version)
	}
	if hdr.Fingerprint != p.Fingerprint() {
		return nil, fmt.Errorf("campaign %s: %s was written by a different plan — use a fresh directory or delete it", p.Name, path)
	}
	for i, line := range lines[1:] {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var res CellResult
		if err := json.Unmarshal([]byte(line), &res); err != nil {
			if i == len(lines)-2 {
				break // torn final line
			}
			return nil, fmt.Errorf("campaign %s: %s line %d: %w", p.Name, path, i+2, err)
		}
		done[res.Key] = res
	}
	return done, nil
}

// checkpointWriter appends finished cells to cells.ndjson, syncing
// after every line so a kill loses at most the cell in flight.
type checkpointWriter struct {
	f *os.File
	w *bufio.Writer
}

// openCheckpoint opens path for appending, writing the header when the
// file is fresh. resume reports whether loadCheckpoint found entries;
// when it found none the file is truncated so a torn header does not
// accumulate.
func openCheckpoint(path string, p *Plan, resume bool) (*checkpointWriter, error) {
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign %s: %w", p.Name, err)
	}
	cw := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if !resume {
		line, err := json.Marshal(checkpointHeader{Campaign: p.Name, Schema: Version, Fingerprint: p.Fingerprint()})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign %s: %w", p.Name, err)
		}
		cw.w.Write(line)
		cw.w.WriteByte('\n')
		if err := cw.flush(); err != nil {
			f.Close()
			return nil, fmt.Errorf("campaign %s: %w", p.Name, err)
		}
	}
	return cw, nil
}

func (c *checkpointWriter) append(res CellResult) {
	line, err := json.Marshal(res)
	if err != nil {
		return // CellResult is plain data; cannot happen
	}
	c.w.Write(line)
	c.w.WriteByte('\n')
	c.flush()
}

func (c *checkpointWriter) flush() error {
	if err := c.w.Flush(); err != nil {
		return err
	}
	return c.f.Sync()
}

// Close flushes and closes the checkpoint.
func (c *checkpointWriter) Close() error {
	if err := c.flush(); err != nil {
		c.f.Close()
		return err
	}
	return c.f.Close()
}
