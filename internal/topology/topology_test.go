package topology

import (
	"math"
	"testing"

	"mnp/internal/packet"
)

func TestGridPlacement(t *testing.T) {
	l, err := Grid(3, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 15 {
		t.Fatalf("N = %d, want 15", l.N())
	}
	if l.Rows() != 3 || l.Cols() != 5 {
		t.Fatalf("dims = %dx%d", l.Rows(), l.Cols())
	}
	p0, err := l.Pos(0)
	if err != nil {
		t.Fatal(err)
	}
	if p0 != (Point{}) {
		t.Fatalf("node 0 at %v, want origin", p0)
	}
	// Node 7 = row 1, col 2.
	p7, err := l.Pos(7)
	if err != nil {
		t.Fatal(err)
	}
	if p7 != (Point{X: 30, Y: 15}) {
		t.Fatalf("node 7 at %v", p7)
	}
	r, c, err := l.GridCoord(7)
	if err != nil || r != 1 || c != 2 {
		t.Fatalf("GridCoord(7) = (%d,%d,%v)", r, c, err)
	}
}

func TestGridRejectsBadArgs(t *testing.T) {
	for _, tt := range []struct {
		r, c int
		s    float64
	}{
		// 65536×65537 nodes would need IDs past the 32-bit address
		// space; the check fires before any allocation.
		{0, 5, 10}, {5, 0, 10}, {5, 5, 0}, {5, 5, -1}, {65536, 65537, 10},
	} {
		if _, err := Grid(tt.r, tt.c, tt.s); err == nil {
			t.Errorf("Grid(%d,%d,%g) accepted", tt.r, tt.c, tt.s)
		}
	}
}

func TestDistance(t *testing.T) {
	l, err := Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Distance(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-10*math.Sqrt2) > 1e-9 {
		t.Fatalf("diagonal distance = %g", d)
	}
	if _, err := l.Distance(0, 99); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if _, err := l.Distance(99, 0); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestWithin(t *testing.T) {
	l, err := Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Center node 4; radius 10 reaches the four orthogonal neighbors.
	got := l.Within(4, 10)
	want := []packet.NodeID{1, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("Within = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Within = %v, want %v", got, want)
		}
	}
	// Radius 15 adds the diagonals.
	if got := l.Within(4, 15); len(got) != 8 {
		t.Fatalf("Within radius 15 = %v", got)
	}
	if got := l.Within(99, 10); got != nil {
		t.Fatalf("Within for bad node = %v", got)
	}
}

func TestLine(t *testing.T) {
	l, err := Line(10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 10 || l.Rows() != 1 || l.Cols() != 10 {
		t.Fatalf("line dims wrong: N=%d %dx%d", l.N(), l.Rows(), l.Cols())
	}
	d, err := l.Distance(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d != 135 {
		t.Fatalf("end-to-end = %g, want 135", d)
	}
}

func TestRandomDeterministic(t *testing.T) {
	a, err := Random(20, 100, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(20, 100, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		pa, _ := a.Pos(packet.NodeID(i))
		pb, _ := b.Pos(packet.NodeID(i))
		if pa != pb {
			t.Fatalf("node %d differs across same-seed layouts", i)
		}
		if pa.X < 0 || pa.X > 100 || pa.Y < 0 || pa.Y > 100 {
			t.Fatalf("node %d outside field: %v", i, pa)
		}
	}
	if _, err := Random(0, 10, 10, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Random(5, -1, 10, 1); err == nil {
		t.Fatal("negative field accepted")
	}
}

func TestHopDistanceAndEdges(t *testing.T) {
	l, err := Grid(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		id   packet.NodeID
		hop  int
		edge bool
	}{
		{0, 0, true},
		{5, 1, false},  // (1,1) interior
		{10, 2, false}, // (2,2) interior
		{15, 3, true},  // far corner
		{3, 3, true},   // (0,3)
		{12, 3, true},  // (3,0)
	}
	for _, tt := range tests {
		hop, err := l.HopDistanceFromCorner(tt.id)
		if err != nil {
			t.Fatal(err)
		}
		if hop != tt.hop {
			t.Errorf("hop(%v) = %d, want %d", tt.id, hop, tt.hop)
		}
		edge, err := l.IsEdge(tt.id)
		if err != nil {
			t.Fatal(err)
		}
		if edge != tt.edge {
			t.Errorf("IsEdge(%v) = %v, want %v", tt.id, edge, tt.edge)
		}
	}
}

func TestNonGridQueriesFail(t *testing.T) {
	l, err := Random(5, 10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.GridCoord(0); err == nil {
		t.Fatal("GridCoord on random layout accepted")
	}
	if _, err := l.HopDistanceFromCorner(0); err == nil {
		t.Fatal("HopDistance on random layout accepted")
	}
	if _, err := l.IsEdge(0); err == nil {
		t.Fatal("IsEdge on random layout accepted")
	}
	if _, _, err := (&Layout{name: "g", cols: 2, rows: 2}).GridCoord(9); err == nil {
		t.Fatal("GridCoord out of range accepted")
	}
}

func TestConnected(t *testing.T) {
	l, err := Line(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Connected(10) {
		t.Fatal("chain with radius = spacing not connected")
	}
	if l.Connected(9.9) {
		t.Fatal("chain with radius < spacing connected")
	}
	if (&Layout{}).Connected(10) {
		t.Fatal("empty layout connected")
	}
	single, err := Grid(1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !single.Connected(1) {
		t.Fatal("single node not connected")
	}
}

func TestConnectedRandom(t *testing.T) {
	// Dense field: easily connected.
	l, err := ConnectedRandom(15, 40, 40, 25, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !l.Connected(25) {
		t.Fatal("ConnectedRandom returned a disconnected layout")
	}
	// Impossible: huge field, tiny radius, few attempts.
	if _, err := ConnectedRandom(30, 10000, 10000, 5, 1, 3); err == nil {
		t.Fatal("impossible connectivity satisfied")
	}
	if _, err := ConnectedRandom(0, 10, 10, 5, 1, 3); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestName(t *testing.T) {
	l, err := Grid(2, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestFromPoints(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {0, 10}}
	l, err := FromPoints("survey", pts)
	if err != nil {
		t.Fatal(err)
	}
	if l.N() != 3 || l.Name() != "survey" {
		t.Fatalf("N=%d name=%q", l.N(), l.Name())
	}
	if l.Rows() != 0 || l.Cols() != 0 {
		t.Fatalf("point layouts must not claim grid shape: rows=%d cols=%d", l.Rows(), l.Cols())
	}
	d, err := l.Distance(0, 1)
	if err != nil || d != 10 {
		t.Fatalf("Distance(0,1) = %v, %v; want 10", d, err)
	}
	// The input slice must be copied, not aliased.
	pts[1].X = 999
	if d2, _ := l.Distance(0, 1); d2 != 10 {
		t.Fatalf("layout aliases caller slice: Distance(0,1) = %v after mutation", d2)
	}
	if _, err := FromPoints("empty", nil); err == nil {
		t.Fatal("FromPoints accepted an empty layout")
	}
	if _, err := FromPoints("nan", []Point{{math.NaN(), 0}}); err == nil {
		t.Fatal("FromPoints accepted a NaN coordinate")
	}
	// A default name is generated when none is given.
	anon, err := FromPoints("", pts[:2])
	if err != nil || anon.Name() != "points-2" {
		t.Fatalf("anonymous layout: %v, name %q", err, anon.Name())
	}
}
