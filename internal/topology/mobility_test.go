package topology

import (
	"reflect"
	"testing"
	"time"

	"mnp/internal/packet"
)

func wpCfg() WaypointConfig {
	return WaypointConfig{SpeedMin: 2, SpeedMax: 6, Pause: 5 * time.Second, Seed: 42}
}

// Same seed, same sampling schedule: identical move sequences.
func TestWaypointDeterministic(t *testing.T) {
	l, err := Grid(4, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	run := func() [][]Move {
		w, err := NewWaypoint(l, wpCfg())
		if err != nil {
			t.Fatal(err)
		}
		var out [][]Move
		for now := 10 * time.Second; now <= 5*time.Minute; now += 10 * time.Second {
			out = append(out, append([]Move(nil), w.Moves(now)...))
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two waypoint models with the same seed diverged")
	}
	moved := 0
	for _, step := range a {
		moved += len(step)
	}
	if moved == 0 {
		t.Fatal("waypoint model produced no moves over 5 minutes")
	}
}

// Positions stay inside the configured field for the whole run.
func TestWaypointStaysInField(t *testing.T) {
	l, err := Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := wpCfg()
	cfg.Width, cfg.Height = 40, 25
	w, err := NewWaypoint(l, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for now := time.Second; now <= 10*time.Minute; now += time.Second {
		for _, mv := range w.Moves(now) {
			if mv.To.X < 0 || mv.To.X > 40 || mv.To.Y < 0 || mv.To.Y > 25 {
				t.Fatalf("node %v left the 40x25 field at %v: %+v", mv.ID, now, mv.To)
			}
		}
	}
}

func TestWaypointConfigValidation(t *testing.T) {
	l, _ := Grid(2, 2, 10)
	bad := []WaypointConfig{
		{SpeedMin: 0, SpeedMax: 1},
		{SpeedMin: 2, SpeedMax: 1},
		{SpeedMin: 1, SpeedMax: 2, Pause: -time.Second},
		{SpeedMin: 1, SpeedMax: 2, Width: -1},
	}
	for i, cfg := range bad {
		if _, err := NewWaypoint(l, cfg); err == nil {
			t.Errorf("config %d (%+v): want error, got nil", i, cfg)
		}
	}
	if _, err := NewWaypoint(nil, wpCfg()); err == nil {
		t.Error("nil layout: want error, got nil")
	}
}

func TestTracePlayback(t *testing.T) {
	tr, err := NewTrace([]TraceEvent{
		{At: time.Second, ID: 1, To: Point{X: 5, Y: 0}},
		{At: 2 * time.Second, ID: 0, To: Point{X: 1, Y: 1}},
		{At: 2 * time.Second, ID: 1, To: Point{X: 6, Y: 0}},
		{At: 9 * time.Second, ID: 2, To: Point{X: 0, Y: 9}},
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := append([]Move(nil), tr.Moves(2*time.Second)...)
	want := []Move{
		{ID: 1, To: Point{X: 5, Y: 0}},
		{ID: 0, To: Point{X: 1, Y: 1}},
		{ID: 1, To: Point{X: 6, Y: 0}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Moves(2s) = %+v, want %+v", got, want)
	}
	if mv := tr.Moves(5 * time.Second); len(mv) != 0 {
		t.Fatalf("Moves(5s) = %+v, want none", mv)
	}
	got = append(got[:0], tr.Moves(time.Minute)...)
	if len(got) != 1 || got[0].ID != packet.NodeID(2) {
		t.Fatalf("Moves(1m) = %+v, want the node-2 event", got)
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace([]TraceEvent{{At: -time.Second}}, 2); err == nil {
		t.Error("negative time: want error")
	}
	if _, err := NewTrace([]TraceEvent{{At: 2 * time.Second}, {At: time.Second}}, 2); err == nil {
		t.Error("unsorted events: want error")
	}
	if _, err := NewTrace([]TraceEvent{{At: 0, ID: 5}}, 2); err == nil {
		t.Error("id out of range: want error")
	}
}

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace([]byte(`[[2, 1, 6, 0], [0.5, 0, 1, 2]]`), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Moves(time.Minute)
	want := []Move{
		{ID: 0, To: Point{X: 1, Y: 2}},
		{ID: 1, To: Point{X: 6, Y: 0}},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed trace = %+v, want %+v", got, want)
	}
	for _, bad := range []string{`{"a": 1}`, `[[0, 1.5, 0, 0]]`, `[[0, -1, 0, 0]]`, `[[0, 9, 0, 0]]`} {
		if _, err := ParseTrace([]byte(bad), 2); err == nil {
			t.Errorf("ParseTrace(%s): want error, got nil", bad)
		}
	}
}
