package topology

import (
	"math"
	"math/rand"
	"testing"

	"mnp/internal/packet"
)

// indexWant is the brute-force O(n²) reference the index must match
// exactly: Layout.Within scans every node.
func indexWant(l *Layout, id packet.NodeID, radius float64) []packet.NodeID {
	return l.Within(id, radius)
}

func assertSameIDs(t *testing.T, label string, got, want []packet.NodeID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: index found %d nodes %v, brute force %d %v",
			label, len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: result[%d] = %v, want %v (got %v want %v)",
				label, i, got[i], want[i], got, want)
		}
	}
}

// Property: across random layouts, cell sizes, and radii, AppendWithin
// returns exactly Layout.Within — same membership, same ascending
// order — for every node.
func TestIndexMatchesBruteForceRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(120)
		w := 10 + rng.Float64()*300
		h := 10 + rng.Float64()*300
		l, err := Random(n, w, h, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range []float64{1, 7.5, 50, 1000} {
			ix, err := NewIndex(l, cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, radius := range []float64{0, 3, 25, 80, 500} {
				var buf []packet.NodeID
				for id := 0; id < n; id++ {
					buf = ix.AppendWithin(packet.NodeID(id), radius, buf[:0])
					assertSameIDs(t, l.Name(), buf, indexWant(l, packet.NodeID(id), radius))
				}
			}
		}
	}
}

// Degenerate geometry: duplicate points (zero distance), colinear runs
// (everything on one axis, so the grid collapses to a single row), and
// a single point.
func TestIndexDegenerateLayouts(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
	}{
		{"duplicates", []Point{{5, 5}, {5, 5}, {5, 5}, {7, 5}, {5, 5}}},
		{"colinear-x", []Point{{0, 0}, {10, 0}, {20, 0}, {30, 0}, {40, 0}, {15, 0}}},
		{"colinear-y", []Point{{3, -20}, {3, 0}, {3, 20}, {3, 40}, {3, 0}}},
		{"single", []Point{{42, 42}}},
		{"two-far", []Point{{0, 0}, {1e6, 1e6}}},
	}
	for _, tc := range cases {
		l, err := FromPoints(tc.name, tc.pts)
		if err != nil {
			t.Fatal(err)
		}
		for _, cell := range []float64{0.5, 10, 1e7} {
			ix, err := NewIndex(l, cell)
			if err != nil {
				t.Fatal(err)
			}
			for _, radius := range []float64{0, 5, 15, 2e6} {
				for id := 0; id < l.N(); id++ {
					got := ix.AppendWithin(packet.NodeID(id), radius, nil)
					assertSameIDs(t, tc.name, got, indexWant(l, packet.NodeID(id), radius))
				}
			}
		}
	}
}

// A tiny cell over a huge bounding box must coarsen until the cell
// count fits the budget rather than allocating cols*rows cells.
func TestIndexCellBudget(t *testing.T) {
	l, err := FromPoints("sparse-extremes", []Point{{0, 0}, {1e9, 1e9}, {5, 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(l, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	cols, rows := ix.Cells()
	if cols*rows > maxCellsFactor*l.N()+16 {
		t.Fatalf("budget not enforced: %d x %d cells for %d nodes", cols, rows, l.N())
	}
	got := ix.AppendWithin(0, 2e9, nil)
	assertSameIDs(t, "coarsened", got, indexWant(l, 0, 2e9))
	if ix.Footprint() == 0 || ix.N() != 3 {
		t.Fatalf("Footprint=%d N=%d", ix.Footprint(), ix.N())
	}
}

func TestIndexRejectsBadArgs(t *testing.T) {
	l, err := Grid(2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIndex(nil, 10); err == nil {
		t.Fatal("nil layout accepted")
	}
	if _, err := NewIndex(&Layout{}, 10); err == nil {
		t.Fatal("empty layout accepted")
	}
	for _, cell := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := NewIndex(l, cell); err == nil {
			t.Fatalf("cell %g accepted", cell)
		}
	}
}

// AppendWithin must append after an existing prefix without touching it.
func TestAppendWithinPreservesPrefix(t *testing.T) {
	l, err := Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(l, 10)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []packet.NodeID{99, 98}
	got := ix.AppendWithin(4, 10, prefix)
	if got[0] != 99 || got[1] != 98 {
		t.Fatalf("prefix clobbered: %v", got)
	}
	assertSameIDs(t, "suffix", got[2:], indexWant(l, 4, 10))
}

// FuzzGridIndex drives the grid hash with arbitrary point sets —
// including duplicate and colinear points the corpus seeds below — and
// checks every query against the brute-force reference.
func FuzzGridIndex(f *testing.F) {
	// Seeds: colinear run, duplicates, one point, two coincident axes.
	f.Add([]byte{0, 0, 10, 0, 20, 0, 30, 0}, uint8(15), uint8(10))
	f.Add([]byte{5, 5, 5, 5, 5, 5}, uint8(1), uint8(1))
	f.Add([]byte{7, 7}, uint8(0), uint8(3))
	f.Add([]byte{0, 0, 0, 200, 200, 0, 200, 200}, uint8(255), uint8(255))
	f.Fuzz(func(t *testing.T, raw []byte, radiusB, cellB uint8) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 256 {
			raw = raw[:256]
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Quarter-foot resolution exercises non-integer coords.
			pts = append(pts, Point{X: float64(raw[i]) / 4, Y: float64(raw[i+1]) / 4})
		}
		l, err := FromPoints("fuzz", pts)
		if err != nil {
			t.Fatal(err)
		}
		cell := float64(cellB)/8 + 0.125 // (0, 32], always positive
		ix, err := NewIndex(l, cell)
		if err != nil {
			t.Fatal(err)
		}
		radius := float64(radiusB) / 4
		var buf []packet.NodeID
		for id := 0; id < l.N(); id++ {
			buf = ix.AppendWithin(packet.NodeID(id), radius, buf[:0])
			want := l.Within(packet.NodeID(id), radius)
			if len(buf) != len(want) {
				t.Fatalf("node %d radius %g cell %g: index %v, brute force %v",
					id, radius, cell, buf, want)
			}
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("node %d radius %g cell %g: index %v, brute force %v",
						id, radius, cell, buf, want)
				}
			}
		}
	})
}
