package topology

import (
	"math/rand"
	"slices"
	"testing"

	"mnp/internal/packet"
)

// checkCSR verifies the index's structural invariants: offsets are
// monotone and bounded, every listed id maps back to the cell holding
// it, each cell's slice is sorted, and removed ids appear nowhere.
func checkCSR(t *testing.T, ix *Index) {
	t.Helper()
	nc := ix.cols * ix.rows
	if len(ix.cellStart) != nc+1 {
		t.Fatalf("cellStart length %d, want %d", len(ix.cellStart), nc+1)
	}
	if ix.cellStart[0] != 0 || int(ix.cellStart[nc]) != len(ix.ids) {
		t.Fatalf("cellStart bounds [%d, %d], want [0, %d]", ix.cellStart[0], ix.cellStart[nc], len(ix.ids))
	}
	for c := 0; c < nc; c++ {
		if ix.cellStart[c] > ix.cellStart[c+1] {
			t.Fatalf("cellStart not monotone at cell %d: %d > %d", c, ix.cellStart[c], ix.cellStart[c+1])
		}
		seg := ix.ids[ix.cellStart[c]:ix.cellStart[c+1]]
		for i, id := range seg {
			if i > 0 && seg[i-1] >= id {
				t.Fatalf("cell %d ids not strictly ascending: %v", c, seg)
			}
			if got := ix.cellOf(ix.pts[id]); got != c {
				t.Fatalf("id %d listed in cell %d but its point maps to cell %d", id, c, got)
			}
			if ix.gone != nil && ix.gone[id] {
				t.Fatalf("removed id %d still listed in cell %d", id, c)
			}
		}
	}
}

// checkAgainstRebuild pins the mutated index to a rebuild-from-scratch
// reference: a fresh NewIndex over the same (moved) points must answer
// every AppendWithin query identically, modulo ids removed from the
// incremental index.
func checkAgainstRebuild(t *testing.T, ix *Index, l *Layout, cell, radius float64) {
	t.Helper()
	ref, err := NewIndex(l, cell)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	var got, want []packet.NodeID
	for id := 0; id < l.N(); id++ {
		got = ix.AppendWithin(packet.NodeID(id), radius, got[:0])
		want = ref.AppendWithin(packet.NodeID(id), radius, want[:0])
		if ix.gone != nil {
			want = slices.DeleteFunc(want, func(o packet.NodeID) bool { return ix.gone[o] })
		}
		if !slices.Equal(got, want) {
			t.Fatalf("query %d after moves: incremental %v, rebuild %v", id, got, want)
		}
	}
}

// TestIndexMoveMatchesRebuild drives long random move/remove sequences
// — including moves far outside the original bounding box, which land
// in the clamped edge cells — and pins every intermediate state to a
// full rebuild.
func TestIndexMoveMatchesRebuild(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		}
		l, err := FromPoints("move-prop", pts)
		if err != nil {
			t.Fatal(err)
		}
		const cell = 15.0
		ix, err := NewIndex(l, cell)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 200; step++ {
			id := packet.NodeID(rng.Intn(n))
			switch {
			case rng.Intn(10) == 0:
				ix.Remove(id)
			default:
				// Mostly short hops, sometimes a teleport past the bbox.
				p := ix.pts[id]
				if rng.Intn(5) == 0 {
					p = Point{X: rng.Float64()*400 - 150, Y: rng.Float64()*400 - 150}
				} else {
					p.X += rng.Float64()*20 - 10
					p.Y += rng.Float64()*20 - 10
				}
				ix.Move(id, p)
			}
			checkCSR(t, ix)
			if step%20 == 19 {
				checkAgainstRebuild(t, ix, l, cell, 25)
			}
		}
		checkAgainstRebuild(t, ix, l, cell, 25)
	}
}

// TestIndexRemoveThenMoveReinserts covers the resurrection path: a
// removed id vanishes from queries and comes back at its new position
// after a Move.
func TestIndexRemoveThenMoveReinserts(t *testing.T) {
	l, err := FromPoints("reinsert", []Point{{0, 0}, {5, 0}, {10, 0}, {15, 0}})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := NewIndex(l, 6)
	if err != nil {
		t.Fatal(err)
	}
	ix.Remove(1)
	if ix.Indexed() != 3 {
		t.Fatalf("Indexed() = %d after one removal, want 3", ix.Indexed())
	}
	if got := ix.AppendWithin(0, 6, nil); len(got) != 0 {
		t.Fatalf("query near removed node returned %v, want none", got)
	}
	ix.Remove(1) // idempotent
	if ix.Indexed() != 3 {
		t.Fatalf("Indexed() = %d after double removal, want 3", ix.Indexed())
	}
	ix.Move(1, Point{X: 14, Y: 0})
	if ix.Indexed() != 4 {
		t.Fatalf("Indexed() = %d after reinsert, want 4", ix.Indexed())
	}
	checkCSR(t, ix)
	got := ix.AppendWithin(3, 2, nil)
	if want := []packet.NodeID{1}; !slices.Equal(got, want) {
		t.Fatalf("query after reinsert = %v, want %v", got, want)
	}
}

// FuzzIndexMoves feeds arbitrary move/remove sequences to the
// incremental index and cross-checks structure plus query equivalence
// with a rebuilt reference. Each 3-byte opcode is (id, x, y); x = y =
// 255 encodes a removal.
func FuzzIndexMoves(f *testing.F) {
	f.Add([]byte{0, 0, 10, 0, 20, 0, 30, 0}, []byte{1, 200, 200, 2, 255, 255, 2, 3, 3})
	f.Add([]byte{5, 5, 5, 5, 5, 5}, []byte{0, 255, 255, 0, 7, 7})
	f.Add([]byte{0, 0, 0, 200, 200, 0, 200, 200}, []byte{3, 0, 0, 0, 200, 200, 1, 100, 100})
	f.Fuzz(func(t *testing.T, raw, ops []byte) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 128 {
			raw = raw[:128]
		}
		if len(ops) > 384 {
			ops = ops[:384]
		}
		pts := make([]Point, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			pts = append(pts, Point{X: float64(raw[i]) / 4, Y: float64(raw[i+1]) / 4})
		}
		l, err := FromPoints("fuzz-moves", pts)
		if err != nil {
			t.Fatal(err)
		}
		const cell = 7.0
		ix, err := NewIndex(l, cell)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i+2 < len(ops); i += 3 {
			id := packet.NodeID(int(ops[i]) % len(pts))
			if ops[i+1] == 255 && ops[i+2] == 255 {
				ix.Remove(id)
			} else {
				ix.Move(id, Point{X: float64(ops[i+1]) / 4, Y: float64(ops[i+2]) / 4})
			}
			checkCSR(t, ix)
		}
		checkAgainstRebuild(t, ix, l, cell, 9)
	})
}

// BenchmarkIndexMove measures the incremental update on a 10k-node
// grid: each iteration hops one node to an adjacent cell and back —
// the short-hop pattern mobility models produce at every barrier.
func BenchmarkIndexMove(b *testing.B) {
	l, err := Grid(100, 100, 10)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := NewIndex(l, 15)
	if err != nil {
		b.Fatal(err)
	}
	pts := l.Points()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := packet.NodeID(i % l.N())
		home := pts[id]
		ix.Move(id, Point{X: home.X + 16, Y: home.Y})
		ix.Move(id, home)
	}
}
