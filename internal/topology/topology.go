// Package topology places motes in 2-D space and answers geometric
// queries. The paper's deployments are grids — indoor 3×5, outdoor 5×5
// and 2×10, simulated 20×20 — with a fixed inter-node spacing and the
// base station at a corner.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"mnp/internal/packet"
)

// Point is a position in feet.
type Point struct {
	X, Y float64
}

// Distance returns the Euclidean distance to q in feet.
func (p Point) Distance(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Layout is an immutable placement of N motes; node IDs are dense,
// 0..N-1.
type Layout struct {
	name   string
	points []Point
	rows   int
	cols   int

	// dist caches the dense pairwise distance matrix; see
	// DistanceMatrix.
	dist []float64
}

// Grid places rows×cols motes with the given spacing (feet), row-major
// from the origin: node r*cols+c sits at (c*spacing, r*spacing). Node 0
// is therefore a corner — where the paper puts the base station.
func Grid(rows, cols int, spacing float64) (*Layout, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("topology: grid %dx%d must be positive", rows, cols)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("topology: spacing %v must be positive", spacing)
	}
	if rows*cols > int(packet.Broadcast) {
		return nil, fmt.Errorf("topology: %d nodes exceeds the address space", rows*cols)
	}
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return &Layout{
		name:   fmt.Sprintf("grid-%dx%d@%gft", rows, cols, spacing),
		points: pts,
		rows:   rows,
		cols:   cols,
	}, nil
}

// Line places n motes in a straight line with the given spacing.
func Line(n int, spacing float64) (*Layout, error) {
	l, err := Grid(1, n, spacing)
	if err != nil {
		return nil, err
	}
	l.name = fmt.Sprintf("line-%d@%gft", n, spacing)
	return l, nil
}

// Random places n motes uniformly at random in a w×h field,
// deterministically from seed.
func Random(n int, w, h float64, seed int64) (*Layout, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: n must be positive, got %d", n)
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("topology: field %gx%g must be positive", w, h)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return &Layout{name: fmt.Sprintf("random-%d@%gx%gft", n, w, h), points: pts}, nil
}

// FromPoints places motes at explicit coordinates (feet) — the
// escape hatch for surveyed field deployments and scenario files that
// list positions directly. The slice is copied; node i sits at pts[i].
func FromPoints(name string, pts []Point) (*Layout, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("topology: point layout %q has no nodes", name)
	}
	if len(pts) > int(packet.Broadcast) {
		return nil, fmt.Errorf("topology: %d nodes exceeds the address space", len(pts))
	}
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return nil, fmt.Errorf("topology: point %d (%g, %g) is not finite", i, p.X, p.Y)
		}
	}
	if name == "" {
		name = fmt.Sprintf("points-%d", len(pts))
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	return &Layout{name: name, points: cp}, nil
}

// Name describes the layout for reports.
func (l *Layout) Name() string { return l.name }

// N returns the number of motes.
func (l *Layout) N() int { return len(l.points) }

// Rows returns the grid row count, or 0 for non-grid layouts.
func (l *Layout) Rows() int { return l.rows }

// Cols returns the grid column count, or 0 for non-grid layouts.
func (l *Layout) Cols() int { return l.cols }

// Points returns the layout's backing point slice — node i sits at
// Points()[i]. The slice is shared, not copied; callers must treat it
// as read-only. The radio geometry uses it to compute link distances
// on demand without the O(N²) distance matrix.
func (l *Layout) Points() []Point { return l.points }

// Pos returns the position of node id.
func (l *Layout) Pos(id packet.NodeID) (Point, error) {
	if int(id) >= len(l.points) {
		return Point{}, fmt.Errorf("topology: node %v out of range (N=%d)", id, len(l.points))
	}
	return l.points[id], nil
}

// Distance returns the distance in feet between two nodes.
func (l *Layout) Distance(a, b packet.NodeID) (float64, error) {
	pa, err := l.Pos(a)
	if err != nil {
		return 0, err
	}
	pb, err := l.Pos(b)
	if err != nil {
		return 0, err
	}
	return pa.Distance(pb), nil
}

// DistanceMatrix returns the dense row-major N×N matrix of pairwise
// distances in feet: entry [a*N+b] is the distance between nodes a and
// b. Geometry is immutable, so the matrix is computed once on first
// call and cached; like the rest of a simulation's state it is not safe
// to build from multiple goroutines concurrently. The radio layer uses
// it to precompute per-power neighbor tables instead of re-deriving
// distances on every frame.
func (l *Layout) DistanceMatrix() []float64 {
	if l.dist != nil {
		return l.dist
	}
	n := len(l.points)
	d := make([]float64, n*n)
	for a := 0; a < n; a++ {
		row := d[a*n : (a+1)*n]
		pa := l.points[a]
		for b := a + 1; b < n; b++ {
			v := pa.Distance(l.points[b])
			row[b] = v
			d[b*n+a] = v
		}
	}
	l.dist = d
	return d
}

// InvalidateDistanceCache drops the cached DistanceMatrix. Mobility
// models mutate node positions through the spatial index's shared
// point slice; the radio geometry calls this on every move so a stale
// matrix is never served afterwards. Distance and Pos always read the
// live points and need no invalidation.
func (l *Layout) InvalidateDistanceCache() { l.dist = nil }

// NeighborsWithin returns, for every node, the IDs of all other nodes
// at distance <= radius in ascending ID order — one precomputed
// adjacency table for the whole layout. Row id is identical to
// Within(id, radius).
func (l *Layout) NeighborsWithin(radius float64) [][]packet.NodeID {
	n := len(l.points)
	ix, err := NewIndex(l, indexCell(radius))
	if err != nil {
		return make([][]packet.NodeID, n)
	}
	out := make([][]packet.NodeID, n)
	for a := 0; a < n; a++ {
		out[a] = ix.AppendWithin(packet.NodeID(a), radius, nil)
	}
	return out
}

// indexCell turns a query radius into a valid index cell size: the
// radius itself when positive, a nominal edge otherwise (a non-positive
// radius only ever matches coincident nodes, so any cell size works).
func indexCell(radius float64) float64 {
	if radius > 0 && !math.IsInf(radius, 0) {
		return radius
	}
	return 1
}

// Within returns the IDs of all nodes other than id at distance <=
// radius, in ascending ID order.
func (l *Layout) Within(id packet.NodeID, radius float64) []packet.NodeID {
	p, err := l.Pos(id)
	if err != nil {
		return nil
	}
	var out []packet.NodeID
	for i, q := range l.points {
		if packet.NodeID(i) == id {
			continue
		}
		if p.Distance(q) <= radius {
			out = append(out, packet.NodeID(i))
		}
	}
	return out
}

// GridCoord returns the (row, col) of node id in a grid layout.
func (l *Layout) GridCoord(id packet.NodeID) (row, col int, err error) {
	if l.cols == 0 {
		return 0, 0, fmt.Errorf("topology: %s is not a grid", l.name)
	}
	if int(id) >= len(l.points) {
		return 0, 0, fmt.Errorf("topology: node %v out of range", id)
	}
	return int(id) / l.cols, int(id) % l.cols, nil
}

// HopDistanceFromCorner returns the Chebyshev grid distance of id from
// node 0 — a convenient "rings from the base station" measure used by
// the location-based reports (Figures 8 and 11).
func (l *Layout) HopDistanceFromCorner(id packet.NodeID) (int, error) {
	r, c, err := l.GridCoord(id)
	if err != nil {
		return 0, err
	}
	if c > r {
		return c, nil
	}
	return r, nil
}

// IsEdge reports whether a grid node lies on the boundary of the grid.
func (l *Layout) IsEdge(id packet.NodeID) (bool, error) {
	r, c, err := l.GridCoord(id)
	if err != nil {
		return false, err
	}
	return r == 0 || c == 0 || r == l.rows-1 || c == l.cols-1, nil
}

// Connected reports whether the layout forms a single connected
// component under the given communication radius. Dissemination
// coverage is only promised for connected networks, so experiments on
// random placements check this first.
func (l *Layout) Connected(radius float64) bool {
	n := len(l.points)
	if n == 0 {
		return false
	}
	ix, err := NewIndex(l, indexCell(radius))
	if err != nil {
		return false
	}
	visited := make([]bool, n)
	queue := []packet.NodeID{0}
	visited[0] = true
	seen := 1
	var buf []packet.NodeID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		buf = ix.AppendWithin(cur, radius, buf[:0])
		for _, nb := range buf {
			if !visited[nb] {
				visited[nb] = true
				seen++
				queue = append(queue, nb)
			}
		}
	}
	return seen == n
}

// ConnectedRandom draws random layouts (varying the seed) until one is
// connected under radius, trying at most attempts times.
func ConnectedRandom(n int, w, h, radius float64, seed int64, attempts int) (*Layout, error) {
	for i := 0; i < attempts; i++ {
		l, err := Random(n, w, h, seed+int64(i))
		if err != nil {
			return nil, err
		}
		if l.Connected(radius) {
			return l, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected random layout of %d nodes in %gx%g within %d attempts", n, w, h, attempts)
}
