package topology

import (
	"fmt"
	"math"
	"slices"

	"mnp/internal/packet"
)

// Index is a uniform grid hash over a layout's points: the bounding box
// is cut into square cells and each cell lists the IDs of the nodes
// inside it, so a range query touches only the cells overlapping the
// query disc instead of every node. Storage is two flat arrays (CSR
// style) — ids sorted by (cell, id) plus per-cell offsets — so an index
// over N nodes costs O(N) memory regardless of density. An Index is
// safe for concurrent readers; Move and Remove are incremental updates
// and must be externally serialized against readers (the engine applies
// them only at lockstep barriers, with all workers parked).
//
// The grid geometry (bounding box, cell size) is fixed at construction:
// points that drift outside the original bounding box land in the
// clamped edge cells, which stays correct because every query filters
// by exact distance — only the constant factor degrades if most nodes
// leave the box.
type Index struct {
	pts        []Point
	minX, minY float64
	cell       float64
	cols, rows int
	cellStart  []int32 // len cols*rows+1; cell c holds ids[cellStart[c]:cellStart[c+1]]
	ids        []int32 // node IDs sorted by (cell, id)
	gone       []bool  // nil until the first Remove; gone[id] = not indexed
}

// maxCellsFactor bounds the cell count relative to the node count, so a
// tiny cell size over a huge bounding box cannot blow up memory: the
// cell edge is grown until cols*rows fits. Queries stay correct for any
// cell size because the walk covers the query disc's full cell range.
const maxCellsFactor = 4

// NewIndex builds a grid hash over the layout with the given cell edge
// length (feet). Pick the largest query radius you will use — for the
// radio, the maximum transmit range — so most queries touch at most a
// 3×3 block of cells; any positive value is correct.
func NewIndex(l *Layout, cell float64) (*Index, error) {
	if l == nil || len(l.points) == 0 {
		return nil, fmt.Errorf("topology: index over an empty layout")
	}
	if !(cell > 0) || math.IsInf(cell, 0) {
		return nil, fmt.Errorf("topology: index cell size %g must be positive and finite", cell)
	}
	pts := l.points
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	ix := &Index{pts: pts, minX: minX, minY: minY, cell: cell}
	budget := maxCellsFactor*len(pts) + 16
	for {
		ix.cols = int((maxX-minX)/ix.cell) + 1
		ix.rows = int((maxY-minY)/ix.cell) + 1
		// Per-axis bounds first so cols*rows cannot overflow.
		if ix.cols > 0 && ix.rows > 0 && ix.cols <= budget && ix.rows <= budget && ix.cols*ix.rows <= budget {
			break
		}
		// Too many (or overflowed) cells for this point count: coarsen.
		ix.cell *= 2
	}
	nc := ix.cols * ix.rows
	counts := make([]int32, nc+1)
	for _, p := range pts {
		counts[ix.cellOf(p)+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	ix.cellStart = counts
	ix.ids = make([]int32, len(pts))
	cursor := make([]int32, nc)
	copy(cursor, counts[:nc])
	// Node IDs ascend here, so each cell's slice comes out sorted.
	for i, p := range pts {
		c := ix.cellOf(p)
		ix.ids[cursor[c]] = int32(i)
		cursor[c]++
	}
	return ix, nil
}

// cellOf maps a point to its cell, clamped into the grid so float
// rounding at the bounding-box edge cannot index out of range.
func (ix *Index) cellOf(p Point) int {
	cx := int((p.X - ix.minX) / ix.cell)
	cy := int((p.Y - ix.minY) / ix.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= ix.cols {
		cx = ix.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= ix.rows {
		cy = ix.rows - 1
	}
	return cy*ix.cols + cx
}

// N returns the number of indexed nodes.
func (ix *Index) N() int { return len(ix.pts) }

// Cells returns the grid dimensions, for diagnostics and tests.
func (ix *Index) Cells() (cols, rows int) { return ix.cols, ix.rows }

// Footprint returns the index's own memory in bytes (excluding the
// point slice, which it shares with the layout).
func (ix *Index) Footprint() uint64 {
	return uint64(len(ix.ids))*4 + uint64(len(ix.cellStart))*4
}

// AppendWithin appends to dst the IDs of all nodes other than id at
// distance <= radius from node id, in ascending ID order — exactly
// Layout.Within, but touching only the cells overlapping the query
// disc. Pass a reused dst[:0] to query without allocating.
func (ix *Index) AppendWithin(id packet.NodeID, radius float64, dst []packet.NodeID) []packet.NodeID {
	p := ix.pts[id]
	base := len(dst)
	cx0, cx1 := ix.clampCol(p.X-radius), ix.clampCol(p.X+radius)
	cy0, cy1 := ix.clampRow(p.Y-radius), ix.clampRow(p.Y+radius)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * ix.cols
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			for _, other := range ix.ids[ix.cellStart[c]:ix.cellStart[c+1]] {
				if packet.NodeID(other) == id {
					continue
				}
				if p.Distance(ix.pts[other]) <= radius {
					dst = append(dst, packet.NodeID(other))
				}
			}
		}
	}
	// Cells are visited row-major, so the result is sorted per cell but
	// not globally.
	slices.Sort(dst[base:])
	return dst
}

func (ix *Index) clampCol(x float64) int {
	c := int(math.Floor((x - ix.minX) / ix.cell))
	if c < 0 {
		return 0
	}
	if c >= ix.cols {
		return ix.cols - 1
	}
	return c
}

func (ix *Index) clampRow(y float64) int {
	r := int(math.Floor((y - ix.minY) / ix.cell))
	if r < 0 {
		return 0
	}
	if r >= ix.rows {
		return ix.rows - 1
	}
	return r
}

// CellIndex returns the cell a point maps to (clamped into the grid),
// for callers that version per-cell state alongside the index.
func (ix *Index) CellIndex(p Point) int { return ix.cellOf(p) }

// CellRect returns the inclusive cell-coordinate rectangle covering the
// disc of the given radius around p — the exact cell set AppendWithin
// walks for that query.
func (ix *Index) CellRect(p Point, radius float64) (cx0, cy0, cx1, cy1 int) {
	return ix.clampCol(p.X - radius), ix.clampRow(p.Y - radius),
		ix.clampCol(p.X + radius), ix.clampRow(p.Y + radius)
}

// locate returns the absolute position of id inside cell c's slice.
// The id must be present; the CSR invariant (ascending ids per cell)
// makes this a binary search.
func (ix *Index) locate(c int, id int32) int {
	seg := ix.ids[ix.cellStart[c]:ix.cellStart[c+1]]
	k, ok := slices.BinarySearch(seg, id)
	if !ok {
		panic(fmt.Sprintf("topology: index corrupt: id %d not in cell %d", id, c))
	}
	return int(ix.cellStart[c]) + k
}

// Move updates node id's position to p, relocating it between cells so
// the CSR arrays stay exact (each cell's slice sorted, offsets
// consistent). Moving a removed id reinserts it. The position write
// goes through the shared point slice, so the owning Layout observes
// the new coordinates too. Cost is O(1) for a same-cell move and
// O(|ids between the two cells|) otherwise — small for the short hops
// mobility models produce.
func (ix *Index) Move(id packet.NodeID, p Point) {
	if ix.gone != nil && ix.gone[id] {
		ix.pts[id] = p
		ix.reinsert(id)
		return
	}
	from := ix.cellOf(ix.pts[id])
	ix.pts[id] = p
	to := ix.cellOf(p)
	if to == from {
		return
	}
	i := ix.locate(from, int32(id))
	if to > from {
		// Insertion point in the target cell, indexed in the pre-removal
		// array; removing position i (< cellStart[to]) shifts everything
		// in (i, j) left one, so id lands at j-1.
		tseg := ix.ids[ix.cellStart[to]:ix.cellStart[to+1]]
		k, _ := slices.BinarySearch(tseg, int32(id))
		j := int(ix.cellStart[to]) + k
		copy(ix.ids[i:j-1], ix.ids[i+1:j])
		ix.ids[j-1] = int32(id)
		for c := from + 1; c <= to; c++ {
			ix.cellStart[c]--
		}
	} else {
		tseg := ix.ids[ix.cellStart[to]:ix.cellStart[to+1]]
		k, _ := slices.BinarySearch(tseg, int32(id))
		j := int(ix.cellStart[to]) + k
		copy(ix.ids[j+1:i+1], ix.ids[j:i])
		ix.ids[j] = int32(id)
		for c := to + 1; c <= from; c++ {
			ix.cellStart[c]++
		}
	}
}

// Remove deletes node id from the index: no query returns it until a
// later Move reinserts it. The point slice keeps its entry (IDs are
// dense indices), only the CSR arrays shrink. Removing an absent id is
// a no-op. Cost is O(N) in the tail shift.
func (ix *Index) Remove(id packet.NodeID) {
	if ix.gone == nil {
		ix.gone = make([]bool, len(ix.pts))
	} else if ix.gone[id] {
		return
	}
	c := ix.cellOf(ix.pts[id])
	i := ix.locate(c, int32(id))
	copy(ix.ids[i:], ix.ids[i+1:])
	ix.ids = ix.ids[:len(ix.ids)-1]
	for cc := c + 1; cc < len(ix.cellStart); cc++ {
		ix.cellStart[cc]--
	}
	ix.gone[id] = true
}

// reinsert puts a previously Removed id back at its current position.
func (ix *Index) reinsert(id packet.NodeID) {
	c := ix.cellOf(ix.pts[id])
	seg := ix.ids[ix.cellStart[c]:ix.cellStart[c+1]]
	k, _ := slices.BinarySearch(seg, int32(id))
	j := int(ix.cellStart[c]) + k
	ix.ids = append(ix.ids, 0)
	copy(ix.ids[j+1:], ix.ids[j:])
	ix.ids[j] = int32(id)
	for cc := c + 1; cc < len(ix.cellStart); cc++ {
		ix.cellStart[cc]++
	}
	ix.gone[id] = false
}

// Indexed returns how many nodes the index currently holds (N minus
// removals).
func (ix *Index) Indexed() int { return len(ix.ids) }
