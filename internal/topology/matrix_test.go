package topology

import (
	"testing"

	"mnp/internal/packet"
)

func matrixLayouts(t *testing.T) []*Layout {
	t.Helper()
	grid, err := Grid(5, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	line, err := Line(12, 7.5)
	if err != nil {
		t.Fatal(err)
	}
	random, err := Random(30, 80, 80, 11)
	if err != nil {
		t.Fatal(err)
	}
	return []*Layout{grid, line, random}
}

func TestDistanceMatrixMatchesDistance(t *testing.T) {
	for _, l := range matrixLayouts(t) {
		n := l.N()
		d := l.DistanceMatrix()
		if len(d) != n*n {
			t.Fatalf("%s: matrix has %d entries, want %d", l.Name(), len(d), n*n)
		}
		for a := 0; a < n; a++ {
			if d[a*n+a] != 0 {
				t.Fatalf("%s: nonzero diagonal at %d", l.Name(), a)
			}
			for b := 0; b < n; b++ {
				want, err := l.Distance(packet.NodeID(a), packet.NodeID(b))
				if err != nil {
					t.Fatal(err)
				}
				// Cached entries must be bit-identical to a fresh
				// computation — the radio's determinism depends on it.
				if d[a*n+b] != want {
					t.Fatalf("%s: dist[%d,%d] = %v, want %v", l.Name(), a, b, d[a*n+b], want)
				}
				if d[a*n+b] != d[b*n+a] {
					t.Fatalf("%s: matrix asymmetric at (%d,%d)", l.Name(), a, b)
				}
			}
		}
		// The matrix is cached: a second call returns the same backing
		// array.
		if &d[0] != &l.DistanceMatrix()[0] {
			t.Fatalf("%s: DistanceMatrix not cached", l.Name())
		}
	}
}

func TestNeighborsWithinMatchesWithin(t *testing.T) {
	for _, l := range matrixLayouts(t) {
		for _, radius := range []float64{0, 7.5, 10, 15, 27, 1000} {
			table := l.NeighborsWithin(radius)
			if len(table) != l.N() {
				t.Fatalf("%s: table has %d rows, want %d", l.Name(), len(table), l.N())
			}
			for id := 0; id < l.N(); id++ {
				want := l.Within(packet.NodeID(id), radius)
				got := table[id]
				if len(got) != len(want) {
					t.Fatalf("%s r=%g node %d: %d neighbors, want %d", l.Name(), radius, id, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s r=%g node %d: neighbor[%d] = %v, want %v", l.Name(), radius, id, i, got[i], want[i])
					}
				}
			}
		}
	}
}
