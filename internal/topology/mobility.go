package topology

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"mnp/internal/packet"
)

// A Move is one node position update produced by a mobility model.
type Move struct {
	ID packet.NodeID
	To Point
}

// Mobility animates node positions over simulated time. Moves is called
// with a strictly increasing sequence of instants and returns the
// position updates effective at that instant, advancing the model's
// internal state deterministically — the same seed and the same call
// sequence always yield the same moves. The returned slice is reused
// across calls; apply it before the next call.
//
// The engine applies moves only at lockstep barriers (see
// experiment.Setup.Mobility), so implementations never race with
// concurrent readers of the shared point slice.
type Mobility interface {
	Moves(now time.Duration) []Move
}

// splitmix64 is a tiny per-node random stream: two words of state per
// node instead of math/rand's 607-word source, so a 250k-node waypoint
// model stays cheap. The constants are the standard splitmix64 finalizer.
type splitmix struct{ s uint64 }

func (r *splitmix) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float returns a uniform draw in [0, 1).
func (r *splitmix) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// WaypointConfig parameterizes the random-waypoint model. Speeds are in
// feet per second to match the rest of the geometry.
type WaypointConfig struct {
	// SpeedMin and SpeedMax bound the per-leg speed draw; SpeedMin must
	// be positive (a zero-speed leg would never end).
	SpeedMin, SpeedMax float64
	// Pause is how long a node rests at each waypoint before picking the
	// next destination.
	Pause time.Duration
	// Width and Height give the field nodes roam over, anchored at the
	// layout's bounding-box minimum corner. Zero means "the layout's own
	// extent" for that axis.
	Width, Height float64
	// Seed drives the per-node destination and speed draws.
	Seed int64
}

// wpLeg is one node's current leg: it rests at `from` until legStart,
// travels to `to` arriving at legEnd, then pauses before the next draw.
type wpLeg struct {
	from, to         Point
	legStart, legEnd time.Duration
	cur              Point // last emitted position
}

// Waypoint is the classic random-waypoint model: each node repeatedly
// draws a uniform destination in the field and a uniform speed in
// [SpeedMin, SpeedMax], travels there in a straight line, pauses, and
// repeats. Every node carries its own splitmix64 stream seeded from
// (Seed, id), so the trajectory of a node is independent of how often
// Moves is sampled and of every other node.
type Waypoint struct {
	cfg           WaypointConfig
	minX, minY    float64
	width, height float64
	rng           []splitmix
	legs          []wpLeg
	buf           []Move
}

// NewWaypoint builds a random-waypoint model over the layout's current
// positions. The layout is only read here — the model owns no reference
// to it, and position updates flow back through the caller applying the
// returned Moves.
func NewWaypoint(l *Layout, cfg WaypointConfig) (*Waypoint, error) {
	if l == nil || l.N() == 0 {
		return nil, fmt.Errorf("topology: waypoint over an empty layout")
	}
	if !(cfg.SpeedMin > 0) || math.IsInf(cfg.SpeedMin, 0) {
		return nil, fmt.Errorf("topology: waypoint speed_min %g must be positive and finite", cfg.SpeedMin)
	}
	if cfg.SpeedMax < cfg.SpeedMin || math.IsInf(cfg.SpeedMax, 0) {
		return nil, fmt.Errorf("topology: waypoint speed_max %g must be >= speed_min %g and finite", cfg.SpeedMax, cfg.SpeedMin)
	}
	if cfg.Pause < 0 {
		return nil, fmt.Errorf("topology: waypoint pause %v must be >= 0", cfg.Pause)
	}
	if cfg.Width < 0 || cfg.Height < 0 {
		return nil, fmt.Errorf("topology: waypoint field %gx%g must be >= 0", cfg.Width, cfg.Height)
	}
	pts := l.Points()
	minX, minY := pts[0].X, pts[0].Y
	maxX, maxY := minX, minY
	for _, p := range pts[1:] {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	w := &Waypoint{
		cfg:    cfg,
		minX:   minX,
		minY:   minY,
		width:  cfg.Width,
		height: cfg.Height,
		rng:    make([]splitmix, len(pts)),
		legs:   make([]wpLeg, len(pts)),
	}
	if w.width == 0 {
		w.width = maxX - minX
	}
	if w.height == 0 {
		w.height = maxY - minY
	}
	for i := range w.rng {
		// Mix id into the seed with the splitmix increment so adjacent
		// ids get decorrelated streams.
		w.rng[i] = splitmix{s: uint64(cfg.Seed) ^ (uint64(i)+1)*0x9e3779b97f4a7c15}
		w.legs[i] = wpLeg{from: pts[i], to: pts[i], cur: pts[i]}
	}
	return w, nil
}

// Moves advances every node to `now` and returns the updates for nodes
// whose position changed since the last call (paused nodes stay quiet,
// which keeps the radio's link-row cache warm for them).
func (w *Waypoint) Moves(now time.Duration) []Move {
	w.buf = w.buf[:0]
	for i := range w.legs {
		leg := &w.legs[i]
		// Finished legs (plus pause) roll into fresh draws until the
		// current leg covers `now`.
		for now >= leg.legEnd+w.cfg.Pause {
			begin := leg.legEnd + w.cfg.Pause
			rng := &w.rng[i]
			leg.from = leg.to
			leg.to = Point{
				X: w.minX + rng.float()*w.width,
				Y: w.minY + rng.float()*w.height,
			}
			speed := w.cfg.SpeedMin + rng.float()*(w.cfg.SpeedMax-w.cfg.SpeedMin)
			travel := time.Duration(leg.from.Distance(leg.to) / speed * float64(time.Second))
			leg.legStart = begin
			leg.legEnd = begin + travel
		}
		var pos Point
		switch {
		case now <= leg.legStart:
			pos = leg.from
		case now >= leg.legEnd:
			pos = leg.to
		default:
			f := float64(now-leg.legStart) / float64(leg.legEnd-leg.legStart)
			pos = Point{
				X: leg.from.X + f*(leg.to.X-leg.from.X),
				Y: leg.from.Y + f*(leg.to.Y-leg.from.Y),
			}
		}
		if pos != leg.cur {
			leg.cur = pos
			w.buf = append(w.buf, Move{ID: packet.NodeID(i), To: pos})
		}
	}
	return w.buf
}

// A TraceEvent is one timestamped position update in a mobility trace.
type TraceEvent struct {
	At time.Duration
	ID packet.NodeID
	To Point
}

// Trace replays a recorded sequence of position updates: Moves returns
// every event with At <= now that has not been delivered yet, in trace
// order. Deterministic by construction.
type Trace struct {
	events []TraceEvent
	next   int
	buf    []Move
}

// NewTrace builds a playback model over the events, which must be
// sorted by time with node ids below n.
func NewTrace(events []TraceEvent, n int) (*Trace, error) {
	for i, ev := range events {
		if ev.At < 0 {
			return nil, fmt.Errorf("topology: trace event %d at negative time %v", i, ev.At)
		}
		if i > 0 && ev.At < events[i-1].At {
			return nil, fmt.Errorf("topology: trace event %d at %v precedes event %d at %v", i, ev.At, i-1, events[i-1].At)
		}
		if int(ev.ID) >= n {
			return nil, fmt.Errorf("topology: trace event %d moves node %v, out of range (N=%d)", i, ev.ID, n)
		}
	}
	return &Trace{events: events}, nil
}

// Moves returns the not-yet-delivered events with At <= now.
func (tr *Trace) Moves(now time.Duration) []Move {
	tr.buf = tr.buf[:0]
	for tr.next < len(tr.events) && tr.events[tr.next].At <= now {
		ev := tr.events[tr.next]
		tr.buf = append(tr.buf, Move{ID: ev.ID, To: ev.To})
		tr.next++
	}
	return tr.buf
}

// ParseTrace decodes a JSON mobility trace: an array of
// [seconds, id, x, y] rows. Rows may be unsorted; the result is sorted
// by time (stably, so same-instant rows keep file order) and validated
// against the node count.
func ParseTrace(data []byte, n int) (*Trace, error) {
	var rows [][4]float64
	if err := json.Unmarshal(data, &rows); err != nil {
		return nil, fmt.Errorf("topology: trace: %w", err)
	}
	events := make([]TraceEvent, len(rows))
	for i, r := range rows {
		id := int(r[1])
		if float64(id) != r[1] || id < 0 {
			return nil, fmt.Errorf("topology: trace row %d: node id %g is not a non-negative integer", i, r[1])
		}
		events[i] = TraceEvent{
			At: time.Duration(r[0] * float64(time.Second)),
			ID: packet.NodeID(id),
			To: Point{X: r[2], Y: r[3]},
		}
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].At < events[b].At })
	return NewTrace(events, n)
}
