// Package eeprom models the mote's external flash, where incoming code
// packets are buffered before reboot. Mica-2/XSM motes carry 512 KB.
//
// The store tracks write counts per packet slot so tests can assert the
// paper's invariant: "we guarantee that each packet in a segment is
// written to EEPROM only once."
package eeprom

import (
	"fmt"
)

// DefaultCapacity is the Mica-2/XSM external flash size in bytes.
const DefaultCapacity = 512 * 1024

// slot is one (segment, packet) cell. present distinguishes an empty
// payload from an unwritten slot.
type slot struct {
	data    []byte
	writes  int
	present bool
}

// Store is a per-node packet store keyed by (segment, packet). It is
// not safe for concurrent use; in the DES a node owns its store, and in
// the live runtime each node goroutine owns its own.
//
// Slots live in dense per-segment rows rather than a map: segment and
// packet IDs are small (MNP caps a segment at 128 packets), and the
// store sits on the simulator's per-delivery hot path, where hashing a
// key per write was measurable across millions of events.
type Store struct {
	capacity int
	used     int
	reads    int
	count    int
	segs     [][]slot // indexed by segment ID, rows grown on demand

	// writeFault, when set, is consulted before each write; a non-nil
	// error fails the write with no state change (the flash driver
	// detected a bad page program). Fault injection installs it.
	writeFault func(seg, pkt int) error
	faults     int
}

// New returns a store with the given capacity in bytes.
func New(capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("eeprom: capacity %d must be positive", capacity)
	}
	return &Store{capacity: capacity}, nil
}

// at returns the slot for (seg, pkt), or nil if it was never written.
func (s *Store) at(seg, pkt int) *slot {
	if seg < 0 || seg >= len(s.segs) || pkt < 0 || pkt >= len(s.segs[seg]) {
		return nil
	}
	sl := &s.segs[seg][pkt]
	if !sl.present {
		return nil
	}
	return sl
}

// Write stores the payload for packet pkt of segment seg (copying it).
// Rewriting an occupied slot is permitted — the protocol is supposed to
// avoid it, and WriteCount exposes violations.
func (s *Store) Write(seg, pkt int, payload []byte) error {
	if seg < 1 || pkt < 0 {
		return fmt.Errorf("eeprom: invalid slot (%d,%d)", seg, pkt)
	}
	if s.writeFault != nil {
		if err := s.writeFault(seg, pkt); err != nil {
			s.faults++
			return err
		}
	}
	for seg >= len(s.segs) {
		s.segs = append(s.segs, nil)
	}
	row := s.segs[seg]
	for pkt >= len(row) {
		row = append(row, slot{})
	}
	s.segs[seg] = row
	sl := &row[pkt]
	prev := len(sl.data)
	if s.used-prev+len(payload) > s.capacity {
		return fmt.Errorf("eeprom: capacity exceeded (%d + %d > %d)", s.used-prev, len(payload), s.capacity)
	}
	s.used += len(payload) - prev
	sl.data = append(sl.data[:0], payload...)
	sl.writes++
	if !sl.present {
		sl.present = true
		s.count++
	}
	return nil
}

// Read returns a copy of the payload stored for (seg, pkt), or nil if
// the slot is empty.
func (s *Store) Read(seg, pkt int) []byte {
	sl := s.at(seg, pkt)
	if sl == nil {
		return nil
	}
	s.reads++
	return append([]byte(nil), sl.data...)
}

// Has reports whether the slot holds data, without counting as a read.
func (s *Store) Has(seg, pkt int) bool {
	return s.at(seg, pkt) != nil
}

// WriteCount returns the number of times (seg, pkt) has been written.
func (s *Store) WriteCount(seg, pkt int) int {
	sl := s.at(seg, pkt)
	if sl == nil {
		return 0
	}
	return sl.writes
}

// MaxWriteCount returns the largest write count over all slots; 1 means
// the write-once invariant held.
func (s *Store) MaxWriteCount() int {
	maxC := 0
	for _, row := range s.segs {
		for i := range row {
			if row[i].present && row[i].writes > maxC {
				maxC = row[i].writes
			}
		}
	}
	return maxC
}

// SetWriteFault installs (or, with nil, removes) a write-fault
// injector. A successful retry after a failed write still counts as
// the slot's first write.
func (s *Store) SetWriteFault(f func(seg, pkt int) error) { s.writeFault = f }

// FaultCount returns how many writes the injected fault rejected.
func (s *Store) FaultCount() int { return s.faults }

// Used returns the number of bytes stored.
func (s *Store) Used() int { return s.used }

// Slots returns the number of occupied slots.
func (s *Store) Slots() int { return s.count }

// Erase drops all contents and counters, as the fail state does when a
// node "releases EEPROM resource".
func (s *Store) Erase() {
	s.segs = nil
	s.used = 0
	s.count = 0
}

// EraseSegment drops the contents of one segment only.
func (s *Store) EraseSegment(seg int) {
	if seg < 0 || seg >= len(s.segs) {
		return
	}
	row := s.segs[seg]
	for i := range row {
		if row[i].present {
			s.used -= len(row[i].data)
			s.count--
		}
	}
	s.segs[seg] = nil
}
