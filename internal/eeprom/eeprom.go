// Package eeprom models the mote's external flash, where incoming code
// packets are buffered before reboot. Mica-2/XSM motes carry 512 KB.
//
// The store tracks write counts per packet slot so tests can assert the
// paper's invariant: "we guarantee that each packet in a segment is
// written to EEPROM only once."
package eeprom

import (
	"fmt"
)

// DefaultCapacity is the Mica-2/XSM external flash size in bytes.
const DefaultCapacity = 512 * 1024

// slot is one (segment, packet) cell. present distinguishes an empty
// payload from an unwritten slot.
type slot struct {
	data    []byte
	writes  int
	present bool
}

// Store is a per-node packet store keyed by (segment, packet). It is
// not safe for concurrent use; in the DES a node owns its store, and in
// the live runtime each node goroutine owns its own.
//
// Slots live in dense per-segment rows rather than a map: segment and
// packet IDs are small (MNP caps a segment at 128 packets), and the
// store sits on the simulator's per-delivery hot path, where hashing a
// key per write was measurable across millions of events.
type Store struct {
	capacity int
	used     int
	reads    int
	count    int
	segs     [][]slot // indexed by segment ID, rows grown on demand

	// writeFault, when set, is consulted before each write; a non-nil
	// error fails the write with no state change (the flash driver
	// detected a bad page program). Fault injection installs it.
	writeFault func(seg, pkt int) error
	faults     int

	// journal, when armed by Begin, records first-touch undo state so
	// Rollback can rewind the store to the Begin point. The optimistic
	// engine uses it as the store's checkpoint implementation: image
	// payload bytes dominate per-node state, and a bounded journal of
	// the few slots a speculation round touches is far cheaper than
	// deep-copying the whole store (DESIGN.md §4l).
	journal *journal
}

// journal is a first-touch undo log: each op stores the Begin-time
// value of one location, recorded the first time the epoch touches it.
// Restore therefore replays ops in forward order (headers before the
// slots that live inside them) and is idempotent.
type journal struct {
	active bool
	ops    []journalOp

	// Scalar counters are snapshotted wholesale at Begin. The reads
	// counter is deliberately not journaled: it has no accessor, so
	// speculative reads are unobservable.
	used, count, faults int
	segsSaved           bool

	// detached is set by Erase: once the Begin-time outer header is
	// saved and the live store switches to fresh arrays, restoring that
	// header alone recovers all pre-Erase state, and notes against the
	// post-Erase arrays would corrupt it. detachedRows is the per-row
	// analogue, set by EraseSegment: the saved row header carries the
	// whole Begin-time row, and later slots in that segment are fresh
	// state with no Begin-time value to note.
	detached     bool
	detachedRows []int
}

func (j *journal) rowDetached(seg int) bool {
	if j.detached {
		return true
	}
	for _, d := range j.detachedRows {
		if d == seg {
			return true
		}
	}
	return false
}

type journalOp struct {
	kind     uint8
	seg, pkt int
	prevSlot slot     // opSlot: deep copy (Write reuses slot backing)
	prevRow  []slot   // opRow: row header at Begin
	prevSegs [][]slot // opSegs: outer header at Begin
}

const (
	opSegs uint8 = iota
	opRow
	opSlot
)

// Begin arms (or re-arms) the undo journal: a later Rollback rewinds
// the store to this point. Stores with no journal armed pay one nil
// check per write.
func (s *Store) Begin() {
	if s.journal == nil {
		s.journal = &journal{}
	}
	j := s.journal
	j.ops = j.ops[:0]
	j.active = true
	j.segsSaved = false
	j.detached = false
	j.detachedRows = j.detachedRows[:0]
	j.used, j.count, j.faults = s.used, s.count, s.faults
}

// Commit discards the undo log, keeping the state written since Begin.
func (s *Store) Commit() {
	if s.journal != nil {
		s.journal.ops = s.journal.ops[:0]
		s.journal.active = false
	}
}

// Rollback rewinds the store to the last Begin and disarms the journal.
func (s *Store) Rollback() {
	j := s.journal
	if j == nil || !j.active {
		return
	}
	// Headers before slots: slot values must land in the Begin-time
	// backings, which the header passes reinstate first (a slot noted
	// before its row later realloc'd would otherwise restore into the
	// discarded new backing). Ops whose location is out of range after
	// the header passes were created beyond the Begin-time structure and
	// are hidden by it.
	for i := range j.ops {
		if j.ops[i].kind == opSegs {
			s.segs = j.ops[i].prevSegs
		}
	}
	for i := range j.ops {
		op := &j.ops[i]
		if op.kind == opRow && op.seg < len(s.segs) {
			s.segs[op.seg] = op.prevRow
		}
	}
	for i := range j.ops {
		op := &j.ops[i]
		if op.kind == opSlot && op.seg < len(s.segs) && op.pkt < len(s.segs[op.seg]) {
			s.segs[op.seg][op.pkt] = op.prevSlot
		}
	}
	s.used, s.count, s.faults = j.used, j.count, j.faults
	j.ops = j.ops[:0]
	j.active = false
}

// noteSegs records the outer header once per epoch.
func (j *journal) noteSegs(s *Store) {
	if j.segsSaved {
		return
	}
	j.segsSaved = true
	j.ops = append(j.ops, journalOp{kind: opSegs, prevSegs: s.segs})
}

// noteRow records seg's row header once per epoch. First touch always
// sees the Begin-time value: every header mutation notes before it
// mutates.
func (j *journal) noteRow(s *Store, seg int) {
	if j.detached {
		return
	}
	for i := range j.ops {
		if j.ops[i].kind == opRow && j.ops[i].seg == seg {
			return
		}
	}
	var row []slot
	if seg < len(s.segs) {
		row = s.segs[seg]
	}
	j.ops = append(j.ops, journalOp{kind: opRow, seg: seg, prevRow: row})
}

// noteSlot deep-copies (seg, pkt)'s current value once per epoch; the
// caller ensures the slot exists. The copy is required because Write
// reuses the slot's data backing in place.
func (j *journal) noteSlot(s *Store, seg, pkt int) {
	if j.rowDetached(seg) {
		return
	}
	for i := range j.ops {
		if j.ops[i].kind == opSlot && j.ops[i].seg == seg && j.ops[i].pkt == pkt {
			return
		}
	}
	sl := s.segs[seg][pkt]
	sl.data = append([]byte(nil), sl.data...)
	j.ops = append(j.ops, journalOp{kind: opSlot, seg: seg, pkt: pkt, prevSlot: sl})
}

// New returns a store with the given capacity in bytes.
func New(capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("eeprom: capacity %d must be positive", capacity)
	}
	return &Store{capacity: capacity}, nil
}

// at returns the slot for (seg, pkt), or nil if it was never written.
func (s *Store) at(seg, pkt int) *slot {
	if seg < 0 || seg >= len(s.segs) || pkt < 0 || pkt >= len(s.segs[seg]) {
		return nil
	}
	sl := &s.segs[seg][pkt]
	if !sl.present {
		return nil
	}
	return sl
}

// Write stores the payload for packet pkt of segment seg (copying it).
// Rewriting an occupied slot is permitted — the protocol is supposed to
// avoid it, and WriteCount exposes violations.
func (s *Store) Write(seg, pkt int, payload []byte) error {
	if seg < 1 || pkt < 0 {
		return fmt.Errorf("eeprom: invalid slot (%d,%d)", seg, pkt)
	}
	if s.writeFault != nil {
		if err := s.writeFault(seg, pkt); err != nil {
			s.faults++ // journaled wholesale at Begin, no op needed
			return err
		}
	}
	j := s.journal
	if j != nil && j.active && seg >= len(s.segs) {
		j.noteSegs(s)
	}
	for seg >= len(s.segs) {
		s.segs = append(s.segs, nil)
	}
	row := s.segs[seg]
	if j != nil && j.active && pkt >= len(row) {
		j.noteRow(s, seg)
	}
	for pkt >= len(row) {
		row = append(row, slot{})
	}
	s.segs[seg] = row
	if j != nil && j.active {
		j.noteSlot(s, seg, pkt)
	}
	sl := &row[pkt]
	prev := len(sl.data)
	if s.used-prev+len(payload) > s.capacity {
		return fmt.Errorf("eeprom: capacity exceeded (%d + %d > %d)", s.used-prev, len(payload), s.capacity)
	}
	s.used += len(payload) - prev
	sl.data = append(sl.data[:0], payload...)
	sl.writes++
	if !sl.present {
		sl.present = true
		s.count++
	}
	return nil
}

// Read returns a copy of the payload stored for (seg, pkt), or nil if
// the slot is empty.
func (s *Store) Read(seg, pkt int) []byte {
	sl := s.at(seg, pkt)
	if sl == nil {
		return nil
	}
	s.reads++
	return append([]byte(nil), sl.data...)
}

// Has reports whether the slot holds data, without counting as a read.
func (s *Store) Has(seg, pkt int) bool {
	return s.at(seg, pkt) != nil
}

// WriteCount returns the number of times (seg, pkt) has been written.
func (s *Store) WriteCount(seg, pkt int) int {
	sl := s.at(seg, pkt)
	if sl == nil {
		return 0
	}
	return sl.writes
}

// MaxWriteCount returns the largest write count over all slots; 1 means
// the write-once invariant held.
func (s *Store) MaxWriteCount() int {
	maxC := 0
	for _, row := range s.segs {
		for i := range row {
			if row[i].present && row[i].writes > maxC {
				maxC = row[i].writes
			}
		}
	}
	return maxC
}

// SetWriteFault installs (or, with nil, removes) a write-fault
// injector. A successful retry after a failed write still counts as
// the slot's first write.
func (s *Store) SetWriteFault(f func(seg, pkt int) error) { s.writeFault = f }

// FaultCount returns how many writes the injected fault rejected.
func (s *Store) FaultCount() int { return s.faults }

// Used returns the number of bytes stored.
func (s *Store) Used() int { return s.used }

// Slots returns the number of occupied slots.
func (s *Store) Slots() int { return s.count }

// Erase drops all contents and counters, as the fail state does when a
// node "releases EEPROM resource".
func (s *Store) Erase() {
	if j := s.journal; j != nil && j.active {
		// Everything post-Erase lives in fresh arrays; the Begin-time
		// outer header alone recovers pre-Erase state on rollback.
		j.noteSegs(s)
		j.detached = true
	}
	s.segs = nil
	s.used = 0
	s.count = 0
}

// EraseSegment drops the contents of one segment only.
func (s *Store) EraseSegment(seg int) {
	if seg < 0 || seg >= len(s.segs) {
		return
	}
	if j := s.journal; j != nil && j.active {
		j.noteRow(s, seg)
		if !j.rowDetached(seg) {
			j.detachedRows = append(j.detachedRows, seg)
		}
	}
	row := s.segs[seg]
	for i := range row {
		if row[i].present {
			s.used -= len(row[i].data)
			s.count--
		}
	}
	s.segs[seg] = nil
}
