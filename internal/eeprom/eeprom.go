// Package eeprom models the mote's external flash, where incoming code
// packets are buffered before reboot. Mica-2/XSM motes carry 512 KB.
//
// The store tracks write counts per packet slot so tests can assert the
// paper's invariant: "we guarantee that each packet in a segment is
// written to EEPROM only once."
package eeprom

import (
	"fmt"
)

// DefaultCapacity is the Mica-2/XSM external flash size in bytes.
const DefaultCapacity = 512 * 1024

type slotKey struct {
	seg int
	pkt int
}

// Store is a per-node packet store keyed by (segment, packet). It is
// not safe for concurrent use; in the DES a node owns its store, and in
// the live runtime each node goroutine owns its own.
type Store struct {
	capacity int
	used     int
	slots    map[slotKey][]byte
	writes   map[slotKey]int
	reads    int
}

// New returns a store with the given capacity in bytes.
func New(capacity int) (*Store, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("eeprom: capacity %d must be positive", capacity)
	}
	return &Store{
		capacity: capacity,
		slots:    make(map[slotKey][]byte),
		writes:   make(map[slotKey]int),
	}, nil
}

// Write stores the payload for packet pkt of segment seg (copying it).
// Rewriting an occupied slot is permitted — the protocol is supposed to
// avoid it, and WriteCount exposes violations.
func (s *Store) Write(seg, pkt int, payload []byte) error {
	if seg < 1 || pkt < 0 {
		return fmt.Errorf("eeprom: invalid slot (%d,%d)", seg, pkt)
	}
	key := slotKey{seg: seg, pkt: pkt}
	prev := len(s.slots[key])
	if s.used-prev+len(payload) > s.capacity {
		return fmt.Errorf("eeprom: capacity exceeded (%d + %d > %d)", s.used-prev, len(payload), s.capacity)
	}
	s.used += len(payload) - prev
	s.slots[key] = append([]byte(nil), payload...)
	s.writes[key]++
	return nil
}

// Read returns a copy of the payload stored for (seg, pkt), or nil if
// the slot is empty.
func (s *Store) Read(seg, pkt int) []byte {
	p, ok := s.slots[slotKey{seg: seg, pkt: pkt}]
	if !ok {
		return nil
	}
	s.reads++
	return append([]byte(nil), p...)
}

// Has reports whether the slot holds data, without counting as a read.
func (s *Store) Has(seg, pkt int) bool {
	_, ok := s.slots[slotKey{seg: seg, pkt: pkt}]
	return ok
}

// WriteCount returns the number of times (seg, pkt) has been written.
func (s *Store) WriteCount(seg, pkt int) int {
	return s.writes[slotKey{seg: seg, pkt: pkt}]
}

// MaxWriteCount returns the largest write count over all slots; 1 means
// the write-once invariant held.
func (s *Store) MaxWriteCount() int {
	maxC := 0
	for _, c := range s.writes {
		if c > maxC {
			maxC = c
		}
	}
	return maxC
}

// Used returns the number of bytes stored.
func (s *Store) Used() int { return s.used }

// Slots returns the number of occupied slots.
func (s *Store) Slots() int { return len(s.slots) }

// Erase drops all contents and counters, as the fail state does when a
// node "releases EEPROM resource".
func (s *Store) Erase() {
	s.slots = make(map[slotKey][]byte)
	s.writes = make(map[slotKey]int)
	s.used = 0
}

// EraseSegment drops the contents of one segment only.
func (s *Store) EraseSegment(seg int) {
	for k := range s.slots {
		if k.seg == seg {
			s.used -= len(s.slots[k])
			delete(s.slots, k)
			delete(s.writes, k)
		}
	}
}
