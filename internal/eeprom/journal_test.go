package eeprom

import (
	"bytes"
	"errors"
	"testing"
)

func mustWrite(t *testing.T, s *Store, seg, pkt int, payload []byte) {
	t.Helper()
	if err := s.Write(seg, pkt, payload); err != nil {
		t.Fatalf("Write(%d,%d): %v", seg, pkt, err)
	}
}

func TestJournalRollbackRewindsWrites(t *testing.T) {
	s, _ := New(DefaultCapacity)
	mustWrite(t, s, 1, 0, []byte("aa"))
	mustWrite(t, s, 1, 1, []byte("bb"))

	s.Begin()
	mustWrite(t, s, 1, 2, []byte("cc"))  // new slot in existing row
	mustWrite(t, s, 3, 0, []byte("dd"))  // new segment
	mustWrite(t, s, 1, 0, []byte("AAA")) // overwrite, reuses backing
	s.Rollback()

	if got := s.Read(1, 0); !bytes.Equal(got, []byte("aa")) {
		t.Fatalf("slot (1,0) = %q, want aa", got)
	}
	if s.Has(1, 2) || s.Has(3, 0) {
		t.Fatal("speculative slots survived rollback")
	}
	if s.Slots() != 2 || s.Used() != 4 {
		t.Fatalf("counters not restored: slots=%d used=%d", s.Slots(), s.Used())
	}
	if s.WriteCount(1, 0) != 1 {
		t.Fatalf("write count not restored: %d", s.WriteCount(1, 0))
	}
}

func TestJournalCommitKeepsWrites(t *testing.T) {
	s, _ := New(DefaultCapacity)
	s.Begin()
	mustWrite(t, s, 1, 0, []byte("aa"))
	s.Commit()
	if !s.Has(1, 0) || s.Slots() != 1 {
		t.Fatal("committed write lost")
	}
	// A later rollback without Begin must be a no-op.
	s.Rollback()
	if !s.Has(1, 0) {
		t.Fatal("rollback without Begin rewound committed state")
	}
}

func TestJournalOverwriteAfterRowGrowth(t *testing.T) {
	// A slot noted before its row reallocs must restore into the
	// Begin-time backing, not the discarded grown one.
	s, _ := New(DefaultCapacity)
	mustWrite(t, s, 1, 0, []byte("aa"))

	s.Begin()
	mustWrite(t, s, 1, 0, []byte("XX"))  // note slot, mutate in old backing
	mustWrite(t, s, 1, 40, []byte("yy")) // forces row realloc
	mustWrite(t, s, 1, 0, []byte("ZZ"))  // mutate in new backing
	s.Rollback()

	if got := s.Read(1, 0); !bytes.Equal(got, []byte("aa")) {
		t.Fatalf("slot (1,0) = %q, want aa", got)
	}
	if s.Has(1, 40) {
		t.Fatal("grown slot survived rollback")
	}
}

func TestJournalEraseRollback(t *testing.T) {
	s, _ := New(DefaultCapacity)
	mustWrite(t, s, 1, 0, []byte("aa"))
	mustWrite(t, s, 2, 0, []byte("bb"))

	s.Begin()
	mustWrite(t, s, 1, 1, []byte("cc"))
	s.Erase()
	mustWrite(t, s, 5, 3, []byte("post-erase")) // fresh arrays, no notes
	s.Rollback()

	if got := s.Read(1, 0); !bytes.Equal(got, []byte("aa")) {
		t.Fatalf("slot (1,0) = %q, want aa", got)
	}
	if got := s.Read(2, 0); !bytes.Equal(got, []byte("bb")) {
		t.Fatalf("slot (2,0) = %q, want bb", got)
	}
	if s.Has(1, 1) || s.Has(5, 3) {
		t.Fatal("speculative or post-erase slots survived rollback")
	}
	if s.Slots() != 2 || s.Used() != 4 {
		t.Fatalf("counters not restored: slots=%d used=%d", s.Slots(), s.Used())
	}
}

func TestJournalEraseSegmentRollback(t *testing.T) {
	s, _ := New(DefaultCapacity)
	mustWrite(t, s, 1, 0, []byte("aa"))
	mustWrite(t, s, 2, 0, []byte("bb"))

	s.Begin()
	s.EraseSegment(1)
	mustWrite(t, s, 1, 0, []byte("replacement"))
	s.Rollback()

	if got := s.Read(1, 0); !bytes.Equal(got, []byte("aa")) {
		t.Fatalf("slot (1,0) = %q, want aa", got)
	}
	if got := s.Read(2, 0); !bytes.Equal(got, []byte("bb")) {
		t.Fatalf("slot (2,0) = %q, want bb", got)
	}
	if s.Slots() != 2 {
		t.Fatalf("slots=%d, want 2", s.Slots())
	}
}

func TestJournalFaultCountRestored(t *testing.T) {
	s, _ := New(DefaultCapacity)
	boom := errors.New("bad page")
	s.SetWriteFault(func(seg, pkt int) error { return boom })
	_ = s.Write(1, 0, []byte("aa")) // faults = 1, pre-Begin

	s.Begin()
	_ = s.Write(1, 0, []byte("aa")) // faults = 2, speculative
	if s.FaultCount() != 2 {
		t.Fatalf("faults=%d, want 2", s.FaultCount())
	}
	s.Rollback()
	if s.FaultCount() != 1 {
		t.Fatalf("faults=%d after rollback, want 1", s.FaultCount())
	}
}

func TestJournalReBeginAfterRollback(t *testing.T) {
	s, _ := New(DefaultCapacity)
	s.Begin()
	mustWrite(t, s, 1, 0, []byte("aa"))
	s.Rollback()

	s.Begin()
	mustWrite(t, s, 1, 0, []byte("bb"))
	s.Commit()
	if got := s.Read(1, 0); !bytes.Equal(got, []byte("bb")) {
		t.Fatalf("slot (1,0) = %q, want bb", got)
	}

	s.Begin()
	mustWrite(t, s, 1, 0, []byte("cc"))
	s.Rollback()
	if got := s.Read(1, 0); !bytes.Equal(got, []byte("bb")) {
		t.Fatalf("slot (1,0) = %q after second rollback, want bb", got)
	}
}
