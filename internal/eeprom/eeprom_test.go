package eeprom

import (
	"bytes"
	"testing"
)

func TestNewRejectsBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		if _, err := New(c); err == nil {
			t.Errorf("New(%d) accepted", c)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s, err := New(1024)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{1, 2, 3, 4}
	if err := s.Write(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	if !s.Has(1, 0) {
		t.Fatal("Has = false after write")
	}
	got := s.Read(1, 0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("Read = %v, want %v", got, payload)
	}
	if s.Read(1, 1) != nil {
		t.Fatal("empty slot returned data")
	}
	if s.Has(2, 0) {
		t.Fatal("Has = true for empty slot")
	}
	if s.Used() != 4 || s.Slots() != 1 {
		t.Fatalf("Used=%d Slots=%d", s.Used(), s.Slots())
	}
}

func TestWriteCopiesPayload(t *testing.T) {
	s, _ := New(1024)
	payload := []byte{9, 9}
	if err := s.Write(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	payload[0] = 0
	if s.Read(1, 0)[0] != 9 {
		t.Fatal("Write aliased caller's buffer")
	}
	out := s.Read(1, 0)
	out[0] = 0
	if s.Read(1, 0)[0] != 9 {
		t.Fatal("Read aliased internal buffer")
	}
}

func TestWriteCountTracksRewrites(t *testing.T) {
	s, _ := New(1024)
	if s.WriteCount(1, 0) != 0 {
		t.Fatal("fresh slot has writes")
	}
	_ = s.Write(1, 0, []byte{1})
	_ = s.Write(1, 1, []byte{2})
	_ = s.Write(1, 0, []byte{3})
	if got := s.WriteCount(1, 0); got != 2 {
		t.Fatalf("WriteCount(1,0) = %d, want 2", got)
	}
	if got := s.MaxWriteCount(); got != 2 {
		t.Fatalf("MaxWriteCount = %d, want 2", got)
	}
	// Rewrite replaces, not accumulates, storage.
	if s.Used() != 2 {
		t.Fatalf("Used = %d, want 2", s.Used())
	}
	if got := s.Read(1, 0); !bytes.Equal(got, []byte{3}) {
		t.Fatalf("rewrite not visible: %v", got)
	}
}

func TestCapacityEnforced(t *testing.T) {
	s, _ := New(10)
	if err := s.Write(1, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(1, 1, make([]byte, 4)); err == nil {
		t.Fatal("over-capacity write accepted")
	}
	// Rewriting the existing slot with same size is fine.
	if err := s.Write(1, 0, make([]byte, 10)); err != nil {
		t.Fatalf("rewrite within capacity rejected: %v", err)
	}
}

func TestInvalidSlots(t *testing.T) {
	s, _ := New(10)
	if err := s.Write(0, 0, []byte{1}); err == nil {
		t.Fatal("segment 0 accepted")
	}
	if err := s.Write(1, -1, []byte{1}); err == nil {
		t.Fatal("negative packet accepted")
	}
}

func TestErase(t *testing.T) {
	s, _ := New(1024)
	_ = s.Write(1, 0, []byte{1})
	_ = s.Write(2, 0, []byte{2, 2})
	s.EraseSegment(1)
	if s.Has(1, 0) {
		t.Fatal("segment 1 survived EraseSegment")
	}
	if !s.Has(2, 0) {
		t.Fatal("segment 2 erased by EraseSegment(1)")
	}
	if s.Used() != 2 {
		t.Fatalf("Used = %d after partial erase", s.Used())
	}
	s.Erase()
	if s.Used() != 0 || s.Slots() != 0 || s.MaxWriteCount() != 0 {
		t.Fatal("Erase left state behind")
	}
}
