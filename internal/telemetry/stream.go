package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"
)

// Stream writes NDJSON records to an underlying writer, buffered. It is
// safe for concurrent use (the live runtime emits from many
// goroutines); in the single-threaded DES the mutex is uncontended.
//
// The first write error latches: subsequent Emits become no-ops
// returning the same error, so a full disk fails the run once instead
// of once per event.
type Stream struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	err    error
	lines  int
}

// NewStream wraps w. If w is also an io.Closer, Close closes it.
func NewStream(w io.Writer) *Stream {
	s := &Stream{w: bufio.NewWriterSize(w, 64<<10)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// CreateStream opens (truncating) an NDJSON file at path.
func CreateStream(path string) (*Stream, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: %w", err)
	}
	return NewStream(f), nil
}

// Emit appends one record to the stream.
func (s *Stream) Emit(r Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	b, err := r.Encode()
	if err != nil {
		s.err = err
		return err
	}
	if _, err := s.w.Write(b); err != nil {
		s.err = err
		return err
	}
	s.lines++
	return nil
}

// Lines returns how many records have been written.
func (s *Stream) Lines() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lines
}

// Err returns the latched write error, if any.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close flushes the buffer and closes the underlying file, if the
// stream owns one. It returns the latched error in preference to a
// flush error, so the first failure is the one reported.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ferr := s.w.Flush(); s.err == nil {
		s.err = ferr
	}
	if s.closer != nil {
		if cerr := s.closer.Close(); s.err == nil {
			s.err = cerr
		}
		s.closer = nil
	}
	return s.err
}

// ReadAll decodes every NDJSON line from r, failing on the first line
// that does not parse. It is the verification counterpart to a run's
// emitted stream.
func ReadAll(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		rec, err := DecodeLine(sc.Bytes())
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
