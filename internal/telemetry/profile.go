package telemetry

import (
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileConfig selects which profiling hooks to arm. Zero values mean
// off; the zero config starts nothing.
type ProfileConfig struct {
	// PprofAddr starts an HTTP server (e.g. "localhost:6060") serving
	// /debug/pprof and /debug/vars for live inspection of long runs.
	PprofAddr string
	// CPUProfile writes a CPU profile to this file for the whole run.
	CPUProfile string
	// TracePath captures a runtime/trace (goroutine scheduling, GC,
	// syscalls) to this file for the whole run.
	TracePath string
}

// StartProfiling arms the configured hooks and returns a stop function
// that flushes and closes them; call it exactly once, deferred. On
// error, anything already started is torn down.
func StartProfiling(cfg ProfileConfig) (stop func() error, err error) {
	var stops []func() error
	teardown := func() error {
		var first error
		// Reverse order: the pprof server outlives the profiles it serves.
		for i := len(stops) - 1; i >= 0; i-- {
			if err := stops[i](); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	defer func() {
		if err != nil {
			teardown()
		}
	}()

	if cfg.PprofAddr != "" {
		ln, lerr := net.Listen("tcp", cfg.PprofAddr)
		if lerr != nil {
			return nil, fmt.Errorf("telemetry: pprof listen: %w", lerr)
		}
		srv := &http.Server{Handler: http.DefaultServeMux}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "pprof: serving http://%s/debug/pprof (and /debug/vars)\n", ln.Addr())
		stops = append(stops, func() error { return srv.Close() })
	}
	if cfg.CPUProfile != "" {
		f, ferr := os.Create(cfg.CPUProfile)
		if ferr != nil {
			return nil, fmt.Errorf("telemetry: cpu profile: %w", ferr)
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			f.Close()
			return nil, fmt.Errorf("telemetry: cpu profile: %w", perr)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if cfg.TracePath != "" {
		f, ferr := os.Create(cfg.TracePath)
		if ferr != nil {
			return nil, fmt.Errorf("telemetry: runtime trace: %w", ferr)
		}
		if terr := trace.Start(f); terr != nil {
			f.Close()
			return nil, fmt.Errorf("telemetry: runtime trace: %w", terr)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return f.Close()
		})
	}
	return teardown, nil
}
