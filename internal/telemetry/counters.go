package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"mnp/internal/metrics"
	"mnp/internal/packet"
)

// Counters is a registry of named monotonic counters. Metric names
// follow the Prometheus text convention — a bare family name plus
// optional {label="value"} pairs baked into the key, e.g.
// "mnp_tx_total{class=\"data\"}" — so the same keys serve the NDJSON
// summary record, the expvar export, and the Prometheus dump.
//
// The registry is safe for concurrent use: expvar handlers read it from
// HTTP goroutines while a run is still writing.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters builds an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Set stores an absolute value for name.
func (c *Counters) Set(name string, v int64) {
	c.mu.Lock()
	c.m[name] = v
	c.mu.Unlock()
}

// Get returns the current value of name (0 if absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot copies the registry into a plain map.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// WritePrometheus dumps the registry in Prometheus text exposition
// format, families sorted by name, one # TYPE line per family.
func (c *Counters) WritePrometheus(w io.Writer) error {
	snap := c.Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lastFamily := ""
	for _, k := range keys {
		family := k
		if i := strings.IndexByte(k, '{'); i >= 0 {
			family = k[:i]
		}
		if family != lastFamily {
			kind := "gauge"
			if strings.HasSuffix(family, "_total") {
				kind = "counter"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind); err != nil {
				return err
			}
			lastFamily = family
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", k, snap[k]); err != nil {
			return err
		}
	}
	return nil
}

// PublishExpvar exposes the registry under the given expvar name
// (reachable at /debug/vars once a pprof server is up). Publishing the
// same name twice is a no-op rather than the panic expvar.Publish
// raises, so tests and repeated runs in one process are safe.
func (c *Counters) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return c.Snapshot() }))
}

// classLabels maps accounting classes to stable label values.
var classLabels = map[packet.Class]string{
	packet.ClassControl:       "control",
	packet.ClassAdvertisement: "adv",
	packet.ClassRequest:       "req",
	packet.ClassData:          "data",
}

// CountersFromSnapshot converts a metrics snapshot into the canonical
// counter set: tx/rx by class, collisions, EEPROM traffic, radio-on and
// sleep time, sender-competition outcomes, and per-segment completion.
func CountersFromSnapshot(s metrics.Snapshot) *Counters {
	c := NewCounters()
	c.Set("mnp_nodes", int64(s.Nodes))
	c.Set("mnp_nodes_completed", int64(s.Completed))
	c.Set("mnp_tx_frames_total", int64(s.Tx))
	c.Set("mnp_rx_frames_total", int64(s.Rx))
	c.Set("mnp_collisions_total", int64(s.Collisions))
	for class, label := range classLabels {
		c.Set(fmt.Sprintf("mnp_tx_frames_total{class=%q}", label), int64(s.TxByClass[class]))
		c.Set(fmt.Sprintf("mnp_rx_frames_total{class=%q}", label), int64(s.RxByClass[class]))
	}
	c.Set("mnp_eeprom_read_bytes_total", int64(s.EEPROMReadBytes))
	c.Set("mnp_eeprom_write_bytes_total", int64(s.EEPROMWriteBytes))
	c.Set("mnp_decode_row_ops_total", int64(s.DecodeOps))
	c.Set("mnp_sender_competitions_total", int64(s.SenderEvents))
	c.Set("mnp_concurrent_sender_overlaps_total", int64(s.ConcurrencyViolations))
	c.Set("mnp_radio_on_ms_total", s.RadioOnTotal.Milliseconds())
	c.Set("mnp_radio_off_ms_total", s.SleepTotal.Milliseconds())
	for seg, n := range s.SegmentCompletions {
		c.Set(fmt.Sprintf("mnp_segment_completed_nodes{seg=%q}", fmt.Sprint(seg)), int64(n))
	}
	return c
}
