package telemetry

import (
	"expvar"
	"strings"
	"testing"
	"time"

	"mnp/internal/metrics"
	"mnp/internal/packet"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	c.Add("a_total", 2)
	c.Add("a_total", 3)
	c.Set("b", 7)
	c.Set("b", 4)
	if got := c.Get("a_total"); got != 5 {
		t.Errorf("Get(a_total) = %d, want 5", got)
	}
	if got := c.Get("b"); got != 4 {
		t.Errorf("Get(b) = %d, want 4", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap["a_total"] != 5 || snap["b"] != 4 {
		t.Errorf("Snapshot = %v", snap)
	}
	// The snapshot is a copy: mutating it must not touch the registry.
	snap["a_total"] = 99
	if got := c.Get("a_total"); got != 5 {
		t.Errorf("registry changed through snapshot: %d", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCounters()
	c.Set(`mnp_tx_frames_total{class="data"}`, 10)
	c.Set(`mnp_tx_frames_total{class="adv"}`, 3)
	c.Set("mnp_tx_frames_total", 13)
	c.Set("mnp_nodes", 9)
	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE mnp_nodes gauge\n" +
		"mnp_nodes 9\n" +
		"# TYPE mnp_tx_frames_total counter\n" +
		"mnp_tx_frames_total 13\n" +
		`mnp_tx_frames_total{class="adv"} 3` + "\n" +
		`mnp_tx_frames_total{class="data"} 10` + "\n"
	if sb.String() != want {
		t.Errorf("dump:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	c := NewCounters()
	c.Set("x", 1)
	c.PublishExpvar("mnp_test_counters")
	// A second publish of the same name must not panic.
	c.PublishExpvar("mnp_test_counters")
	v := expvar.Get("mnp_test_counters")
	if v == nil {
		t.Fatal("expvar name not published")
	}
	if !strings.Contains(v.String(), `"x":1`) {
		t.Errorf("expvar value = %s, want it to contain x", v.String())
	}
}

func TestCountersFromSnapshot(t *testing.T) {
	s := metrics.Snapshot{
		Nodes: 15, Completed: 14,
		Tx: 100, Rx: 90, Collisions: 5,
		TxByClass:       map[packet.Class]int{packet.ClassData: 60, packet.ClassAdvertisement: 40},
		RxByClass:       map[packet.Class]int{packet.ClassData: 55},
		EEPROMReadBytes: 2200, EEPROMWriteBytes: 1100,
		SenderEvents: 12, ConcurrencyViolations: 1,
		RadioOnTotal: 90 * time.Second, SleepTotal: 10 * time.Second,
		SegmentCompletions: map[int]int{0: 15, 1: 14},
	}
	c := CountersFromSnapshot(s)
	checks := map[string]int64{
		"mnp_nodes":                            15,
		"mnp_nodes_completed":                  14,
		"mnp_tx_frames_total":                  100,
		"mnp_rx_frames_total":                  90,
		"mnp_collisions_total":                 5,
		`mnp_tx_frames_total{class="data"}`:    60,
		`mnp_tx_frames_total{class="adv"}`:     40,
		`mnp_tx_frames_total{class="req"}`:     0,
		`mnp_rx_frames_total{class="data"}`:    55,
		"mnp_eeprom_read_bytes_total":          2200,
		"mnp_eeprom_write_bytes_total":         1100,
		"mnp_sender_competitions_total":        12,
		"mnp_concurrent_sender_overlaps_total": 1,
		"mnp_radio_on_ms_total":                90000,
		"mnp_radio_off_ms_total":               10000,
		`mnp_segment_completed_nodes{seg="0"}`: 15,
		`mnp_segment_completed_nodes{seg="1"}`: 14,
	}
	for name, want := range checks {
		if got := c.Get(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
