package telemetry

import (
	"fmt"
	"io"
	"sync"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// Progress is a node.Observer that narrates a run on a side channel
// (stderr, in the CLIs): nodes complete, segment completions, and the
// latest simulated time, throttled by wall clock so a multi-hour sweep
// prints a heartbeat instead of a firehose. It never touches stdout,
// so report output and golden hashes are unaffected.
type Progress struct {
	mu       sync.Mutex
	w        io.Writer
	label    string
	total    int
	interval time.Duration

	done    int
	segs    int
	lastSim time.Duration
	lastOut time.Time
}

// NewProgress builds a reporter for a fleet of total nodes writing to
// w at most once per interval (default 1s).
func NewProgress(w io.Writer, label string, total int, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = time.Second
	}
	return &Progress{w: w, label: label, total: total, interval: interval}
}

var _ node.Observer = (*Progress)(nil)

// NodeEvent implements node.Observer.
func (p *Progress) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch ev.Kind {
	case node.EventGotCode:
		p.done++
	case node.EventGotSegment:
		p.segs++
	default:
		return
	}
	p.lastSim = at
	// Always report the finish line; throttle everything else.
	if p.done == p.total || time.Since(p.lastOut) >= p.interval {
		p.lastOut = time.Now()
		p.emit()
	}
}

// RadioState implements node.Observer.
func (p *Progress) RadioState(packet.NodeID, time.Duration, bool) {}

// StorageOp implements node.Observer.
func (p *Progress) StorageOp(packet.NodeID, bool, int, int, int) {}

// Final prints a last line unconditionally (call after the run ends).
func (p *Progress) Final() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.emit()
}

func (p *Progress) emit() {
	fmt.Fprintf(p.w, "%s: %d/%d nodes complete, %d segment completions, t=%v\n",
		p.label, p.done, p.total, p.segs, p.lastSim.Round(time.Second))
}
