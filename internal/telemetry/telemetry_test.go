package telemetry

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mnp/internal/node"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// emitFixture drives a Recorder through one of every record type in a
// fixed order, standing in for a tiny run.
func emitFixture(t *testing.T, s *Stream) {
	t.Helper()
	now := time.Duration(0)
	rec, err := NewRecorder(s, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	rec.Meta("golden", 42, 15, 640, "MNP")
	rec.Fault(30*time.Second, "reboot", "reboot node 7 at 30s for 10s")
	rec.NodeEvent(3, 1*time.Second, node.Event{Kind: node.EventStateChange, State: "rx"})
	rec.NodeEvent(3, 2*time.Second, node.Event{Kind: node.EventParentSet, Peer: 1, Seg: 2})
	rec.RadioState(4, 2500*time.Millisecond, true)
	now = 3 * time.Second
	rec.StorageOp(3, true, 2, 17, 22)
	rec.StorageOp(3, false, 2, 17, 22)
	rec.NodeEvent(3, 4*time.Second, node.Event{Kind: node.EventGotSegment, Seg: 2})
	rec.NodeEvent(5, 5*time.Second, node.Event{Kind: node.EventBecameSender, Seg: 3})
	rec.NodeEvent(3, 6*time.Second, node.Event{Kind: node.EventGotCode})
	rec.NodeEvent(7, 7*time.Second, node.Event{Kind: node.EventRebooted})
	rec.NodeEvent(7, 7*time.Second, node.Event{Kind: node.EventStoreErased})
	rec.RadioState(4, 8*time.Second, false)
	rec.Violation(9*time.Second, 5, "sender-exclusivity", "nodes 5 and 6 both sending segment 3")
	rec.Load(9500*time.Millisecond, 310, 1, 4, 5200, 64, 120000, 2)
	now = 10 * time.Second
	rec.Summary(map[string]int64{"mnp_nodes": 15, "mnp_tx_frames_total": 1234})
}

// TestGoldenStream locks the NDJSON schema: the fixture run must
// serialize byte-for-byte to testdata/golden.ndjson. A diff here means
// the on-disk format changed — bump SchemaVersion if that is intended,
// then regenerate with -update.
func TestGoldenStream(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf)
	emitFixture(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "golden.ndjson")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("stream differs from golden file\ngot:\n%s\nwant:\n%s", got, want)
	}

	// Every golden line must parse back, and the decoded stream must
	// open with the schema-versioned meta record and end with the
	// summary.
	recs, err := ReadAll(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 16 {
		t.Fatalf("got %d records, want 16", len(recs))
	}
	if recs[0].Type != TypeMeta || recs[0].V != SchemaVersion {
		t.Errorf("first record = %+v, want meta with v=%d", recs[0], SchemaVersion)
	}
	last := recs[len(recs)-1]
	if last.Type != TypeSummary || last.Counters["mnp_tx_frames_total"] != 1234 {
		t.Errorf("last record = %+v, want summary with counters", last)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Record{
		{Type: TypeMeta, V: 1, Name: "run", Seed: -3, Nodes: 64, Packets: 640, Protocol: "Deluge"},
		{Type: TypeEvent, T: 123456789, Node: 9, Kind: KindState, State: "idle"},
		{Type: TypeRadio, Node: 1, On: true},
		{Type: TypeStorage, Node: 2, Write: true, Seg: 4, Pkt: 127, Bytes: 22},
		{Type: TypeViolation, Node: 3, Rule: "write-once", Detail: "slot (0,1) rewritten"},
		{Type: TypeFault, T: 1, Kind: "crash", Detail: "crash node 5 at 20s"},
		{Type: TypeLoad, T: 9500, Win: 310, Shard: 1, Tiles: 4, Events: 5200, Delivered: 64, WaitNs: 120000, Migrations: 2},
		// Idle executor: an all-zero load row must still round-trip.
		{Type: TypeLoad, Win: 32},
		{Type: TypeSummary, Counters: map[string]int64{"a": 1, "b": -2}},
		// All-zero payload: omitempty must round-trip.
		{Type: TypeEvent},
	}
	for _, want := range cases {
		b, err := want.Encode()
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if !bytes.HasSuffix(b, []byte("\n")) {
			t.Fatalf("%+v: encoded line lacks trailing newline", want)
		}
		got, err := DecodeLine(bytes.TrimSuffix(b, []byte("\n")))
		if err != nil {
			t.Fatalf("%+v: decode: %v", want, err)
		}
		if got.Type != want.Type || got.T != want.T || got.Node != want.Node ||
			got.Kind != want.Kind || got.State != want.State ||
			got.Seg != want.Seg || got.Pkt != want.Pkt || got.Peer != want.Peer ||
			got.On != want.On || got.Write != want.Write || got.Bytes != want.Bytes ||
			got.Rule != want.Rule || got.Detail != want.Detail ||
			got.Name != want.Name || got.Seed != want.Seed ||
			got.Nodes != want.Nodes || got.Packets != want.Packets ||
			got.Protocol != want.Protocol || len(got.Counters) != len(want.Counters) ||
			got.Win != want.Win || got.Shard != want.Shard || got.Tiles != want.Tiles ||
			got.Events != want.Events || got.Delivered != want.Delivered ||
			got.WaitNs != want.WaitNs || got.Migrations != want.Migrations {
			t.Errorf("round trip: got %+v, want %+v", got, want)
		}
		for k, v := range want.Counters {
			if got.Counters[k] != v {
				t.Errorf("counter %q: got %d, want %d", k, got.Counters[k], v)
			}
		}
	}
}

func TestEncodeRejectsMissingType(t *testing.T) {
	if _, err := (Record{Node: 1}).Encode(); err == nil {
		t.Error("Encode accepted a record with no type")
	}
}

func TestDecodeRejectsBadLines(t *testing.T) {
	for _, line := range []string{
		"",
		"{",
		`{"node":1}`,
		`{"type":"x","zzz":1}`,
		`[1,2,3]`,
	} {
		if _, err := DecodeLine([]byte(line)); err == nil {
			t.Errorf("DecodeLine(%q) succeeded, want error", line)
		}
	}
}

func TestReadAllFailsOnBadLine(t *testing.T) {
	in := `{"type":"event","node":1}` + "\n" + "not json\n"
	if _, err := ReadAll(strings.NewReader(in)); err == nil {
		t.Error("ReadAll accepted a stream with a bad line")
	}
	// Blank lines are tolerated (trailing newline artifacts).
	recs, err := ReadAll(strings.NewReader(`{"type":"event"}` + "\n\n" + `{"type":"summary"}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("got %d records, want 2", len(recs))
	}
}

// failWriter rejects every write.
type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

func TestStreamLatchesFirstError(t *testing.T) {
	s := NewStream(failWriter{})
	// The bufio layer absorbs small writes; an oversized record forces
	// a flush-through, surfacing the error, which must then latch.
	big := Record{Type: TypeEvent, Detail: strings.Repeat("x", 80<<10)}
	if err := s.Emit(big); err == nil {
		t.Fatal("Emit to a failing writer succeeded")
	}
	if got := s.Emit(Record{Type: TypeEvent}); got == nil {
		t.Error("Emit after a latched error succeeded")
	}
	if s.Err() == nil {
		t.Error("Err() returned nil after a write failure")
	}
	if s.Lines() != 0 {
		t.Errorf("Lines() = %d after failed writes, want 0", s.Lines())
	}
}

func TestCreateStreamWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	s, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Emit(Record{Type: TypeEvent, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Node != 1 {
		t.Errorf("got %+v, want one record for node 1", recs)
	}
	if s.Lines() != 1 {
		t.Errorf("Lines() = %d, want 1", s.Lines())
	}
}

func TestRecorderRequiresStreamAndClock(t *testing.T) {
	if _, err := NewRecorder(nil, func() time.Duration { return 0 }); err == nil {
		t.Error("NewRecorder accepted a nil stream")
	}
	if _, err := NewRecorder(NewStream(&bytes.Buffer{}), nil); err == nil {
		t.Error("NewRecorder accepted a nil clock")
	}
}

func TestRecorderUnknownEventKind(t *testing.T) {
	var buf bytes.Buffer
	s := NewStream(&buf)
	rec, err := NewRecorder(s, func() time.Duration { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	rec.NodeEvent(1, 0, node.Event{Kind: node.EventKind(99)})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Kind != "event-99" {
		t.Errorf("got %+v, want kind event-99", recs)
	}
}
