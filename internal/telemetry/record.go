// Package telemetry is the machine-readable observability layer of the
// simulator: it streams everything a run observes — protocol events,
// radio transitions, EEPROM traffic, invariant violations, the fault
// plan — as schema-versioned NDJSON (one JSON object per line,
// jq-friendly), exports the run's aggregate counters through expvar and
// a Prometheus-style text dump, and provides the profiling hooks
// (pprof server, CPU profile, runtime/trace capture) and live stderr
// progress the long-running CLIs use.
//
// Everything in this package is opt-in: a run with no telemetry
// attached executes byte-identically to one without the package linked
// at all, which is what keeps the golden determinism hashes valid.
package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// SchemaVersion identifies the NDJSON record layout. It is carried by
// the run's meta record (the first line of every stream) so consumers
// can reject files written by an incompatible writer.
const SchemaVersion = 1

// Record types. Every NDJSON line carries exactly one of these in its
// "type" field.
const (
	TypeMeta      = "meta"      // first line: run identity + schema version
	TypeEvent     = "event"     // protocol observation (state, segment, …)
	TypeRadio     = "radio"     // radio power transition
	TypeStorage   = "storage"   // EEPROM read/write
	TypeViolation = "violation" // online invariant breach
	TypeFault     = "fault"     // scheduled fault-plan event
	TypeLoad      = "load"      // engine per-period executor load sample
	TypeSummary   = "summary"   // last line: final counter values
)

// Event kind labels for TypeEvent records, mirroring node.EventKind.
const (
	KindState   = "state"
	KindParent  = "parent"
	KindSegment = "segment"
	KindCode    = "code"
	KindSender  = "sender"
	KindReboot  = "reboot"
	KindErase   = "erase"
	KindDecode  = "decode"
)

// Record is one NDJSON line. The struct is deliberately flat: every
// record type uses the subset of fields it needs and omits the rest, so
// a zero field and an absent field are interchangeable (which is also
// what makes encode/decode round-trips exact).
type Record struct {
	// V is the schema version; only the meta record carries it.
	V int `json:"v,omitempty"`
	// Type discriminates the record (TypeMeta, TypeEvent, …).
	Type string `json:"type"`
	// T is the simulated time in nanoseconds.
	T int64 `json:"t_ns,omitempty"`
	// Node is the observed node ID (absent means node 0 or not
	// node-scoped).
	Node int `json:"node,omitempty"`

	// Kind labels TypeEvent records (KindState…) and TypeFault records
	// (the fault kind, e.g. "reboot").
	Kind string `json:"kind,omitempty"`
	// State is the new protocol state for KindState events.
	State string `json:"state,omitempty"`
	// Seg and Pkt address a segment / EEPROM slot.
	Seg int `json:"seg,omitempty"`
	Pkt int `json:"pkt,omitempty"`
	// Peer is the parent node for KindParent events.
	Peer int `json:"peer,omitempty"`
	// On is the new radio state for TypeRadio records.
	On bool `json:"on,omitempty"`
	// Write distinguishes EEPROM writes from reads; Bytes is the
	// payload size.
	Write bool `json:"write,omitempty"`
	Bytes int  `json:"bytes,omitempty"`
	// Ops is the GF(256) row-operation count for KindDecode events.
	Ops int `json:"ops,omitempty"`

	// Rule and Detail describe a TypeViolation record; Detail also
	// carries the human-readable form of a TypeFault event.
	Rule   string `json:"rule,omitempty"`
	Detail string `json:"detail,omitempty"`

	// Meta fields (TypeMeta only).
	Name     string `json:"name,omitempty"`
	Seed     int64  `json:"seed,omitempty"`
	Nodes    int    `json:"nodes,omitempty"`
	Packets  int    `json:"packets,omitempty"`
	Protocol string `json:"protocol,omitempty"`

	// Engine load-sample fields (TypeLoad only): one record per
	// (report period, executor). Win is the lockstep window count at
	// the end of the period, Shard the executor index, Tiles how many
	// tiles it held, Events/Delivered the deterministic load it
	// executed, WaitNs its wall-clock barrier wait (diagnostic only),
	// and Migrations the tiles moved at the closing barrier.
	Win        int   `json:"win,omitempty"`
	Shard      int   `json:"shard,omitempty"`
	Tiles      int   `json:"tiles,omitempty"`
	Events     int64 `json:"events,omitempty"`
	Delivered  int64 `json:"delivered,omitempty"`
	WaitNs     int64 `json:"wait_ns,omitempty"`
	Migrations int   `json:"migrations,omitempty"`

	// Counters is the final counter snapshot (TypeSummary only). Keys
	// are the same metric names the Prometheus dump uses.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Encode renders the record as one NDJSON line, trailing newline
// included. Field order is fixed by the struct, so identical records
// always encode to identical bytes.
func (r Record) Encode() ([]byte, error) {
	if r.Type == "" {
		return nil, fmt.Errorf("telemetry: record has no type")
	}
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeLine parses one NDJSON line back into a Record. Unknown fields
// are rejected, so schema drift between writer and reader fails loudly
// instead of silently dropping data.
func DecodeLine(line []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var r Record
	if err := dec.Decode(&r); err != nil {
		return Record{}, fmt.Errorf("telemetry: decode: %w", err)
	}
	if r.Type == "" {
		return Record{}, fmt.Errorf("telemetry: record has no type")
	}
	return r, nil
}
