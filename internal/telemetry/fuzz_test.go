package telemetry

import (
	"bytes"
	"reflect"
	"testing"
	"unicode/utf8"
)

// FuzzRecordRoundTrip drives arbitrary field values through
// Encode/DecodeLine and requires exact struct equality back. Because
// every field is omitempty, this also proves that zero values and
// absent fields are genuinely interchangeable — the property the flat
// Record schema depends on.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add("event", int64(12345), 3, "state", "rx", 2, 17, 1, true, false, 22,
		"write-once", "detail", "run", int64(42), 15, 640, "MNP")
	f.Add("meta", int64(0), 0, "", "", 0, 0, 0, false, false, 0, "", "", "", int64(-1), 0, 0, "")
	f.Add("summary", int64(-9e18), -1, "\x00", "日本語", 1<<30, -5, 99, true, true, -1,
		"r\nule", "de\"tail", "n\\ame", int64(9e18), -64, 1, "проток")
	f.Fuzz(func(t *testing.T, typ string, tns int64, nodeID int,
		kind, state string, seg, pkt, peer int, on, write bool, nbytes int,
		rule, detail, name string, seed int64, nodes, packets int, protocol string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD, so exact
		// round-trips only hold for valid strings — which is all the
		// writer ever produces.
		for _, s := range []string{typ, kind, state, rule, detail, name, protocol} {
			if !utf8.ValidString(s) {
				t.Skip("invalid UTF-8 input")
			}
		}
		want := Record{
			Type: typ, T: tns, Node: nodeID,
			Kind: kind, State: state, Seg: seg, Pkt: pkt, Peer: peer,
			On: on, Write: write, Bytes: nbytes,
			Rule: rule, Detail: detail,
			Name: name, Seed: seed, Nodes: nodes, Packets: packets, Protocol: protocol,
		}
		b, err := want.Encode()
		if typ == "" {
			if err == nil {
				t.Fatal("Encode accepted an empty type")
			}
			return
		}
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		if bytes.IndexByte(b[:len(b)-1], '\n') >= 0 {
			t.Fatalf("encoded record spans multiple lines: %q", b)
		}
		got, err := DecodeLine(bytes.TrimSuffix(b, []byte("\n")))
		if err != nil {
			t.Fatalf("decode %q: %v", b, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}
