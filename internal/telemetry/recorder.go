package telemetry

import (
	"fmt"
	"time"

	"mnp/internal/node"
	"mnp/internal/packet"
)

// Recorder turns harness observations into NDJSON records on a Stream.
// It implements node.Observer, so it plugs into a run exactly where the
// metrics collector and trace log do — but where the trace ring keeps
// the last N entries in memory, the recorder streams every entry out as
// it happens, which is what makes a crashed or wedged run debuggable
// after the fact.
type Recorder struct {
	s   *Stream
	now func() time.Duration
}

// NewRecorder builds a recorder emitting to s; now supplies timestamps
// for observations that do not carry one (use Kernel.Now).
func NewRecorder(s *Stream, now func() time.Duration) (*Recorder, error) {
	if s == nil || now == nil {
		return nil, fmt.Errorf("telemetry: stream and clock are required")
	}
	return &Recorder{s: s, now: now}, nil
}

// Stream returns the underlying stream (for Close and error checks).
func (r *Recorder) Stream() *Stream { return r.s }

// SetClock replaces the recorder's timestamp source. The sharded engine
// replays buffered observations at window barriers and substitutes a
// clock that reads each event's original time, so records carry
// simulation instants rather than replay instants.
func (r *Recorder) SetClock(now func() time.Duration) {
	if now != nil {
		r.now = now
	}
}

// Meta emits the run-identity record. Call it once, first.
func (r *Recorder) Meta(name string, seed int64, nodes, packets int, protocol string) {
	r.s.Emit(Record{
		V: SchemaVersion, Type: TypeMeta,
		Name: name, Seed: seed, Nodes: nodes, Packets: packets, Protocol: protocol,
	})
}

// Fault emits one scheduled fault-plan event. Emit the whole plan up
// front, before the run starts, so a reader knows what was injected
// even if the run never reaches the fault's fire time.
func (r *Recorder) Fault(at time.Duration, kind, detail string) {
	r.s.Emit(Record{Type: TypeFault, T: int64(at), Kind: kind, Detail: detail})
}

// Violation emits an online invariant breach (wire it to
// invariant.Config.OnViolation).
func (r *Recorder) Violation(at time.Duration, id packet.NodeID, rule, detail string) {
	r.s.Emit(Record{Type: TypeViolation, T: int64(at), Node: int(id), Rule: rule, Detail: detail})
}

// Load emits one engine load sample: executor shard held tiles tiles
// over the report period ending at barrier (window lockstep windows
// into the run), executed events kernel events, delivered delivered
// frames, waited waitNs at barriers, and migrations tiles moved at the
// closing barrier. The engine emits one record per executor per
// period.
func (r *Recorder) Load(barrier time.Duration, window, shard, tiles int, events, delivered, waitNs int64, migrations int) {
	r.s.Emit(Record{
		Type: TypeLoad, T: int64(barrier), Win: window, Shard: shard, Tiles: tiles,
		Events: events, Delivered: delivered, WaitNs: waitNs, Migrations: migrations,
	})
}

// Summary emits the final counter snapshot. Call it once, last.
func (r *Recorder) Summary(counters map[string]int64) {
	r.s.Emit(Record{Type: TypeSummary, T: int64(r.now()), Counters: counters})
}

var _ node.Observer = (*Recorder)(nil)

// NodeEvent implements node.Observer.
func (r *Recorder) NodeEvent(id packet.NodeID, at time.Duration, ev node.Event) {
	rec := Record{Type: TypeEvent, T: int64(at), Node: int(id)}
	switch ev.Kind {
	case node.EventStateChange:
		rec.Kind, rec.State = KindState, ev.State
	case node.EventParentSet:
		rec.Kind, rec.Peer, rec.Seg = KindParent, int(ev.Peer), ev.Seg
	case node.EventGotSegment:
		rec.Kind, rec.Seg = KindSegment, ev.Seg
	case node.EventGotCode:
		rec.Kind = KindCode
	case node.EventBecameSender:
		rec.Kind, rec.Seg = KindSender, ev.Seg
	case node.EventRebooted:
		rec.Kind = KindReboot
	case node.EventStoreErased:
		rec.Kind = KindErase
	case node.EventDecodeOps:
		rec.Kind, rec.Seg, rec.Ops = KindDecode, ev.Seg, ev.Ops
	default:
		rec.Kind = fmt.Sprintf("event-%d", int(ev.Kind))
	}
	r.s.Emit(rec)
}

// RadioState implements node.Observer.
func (r *Recorder) RadioState(id packet.NodeID, at time.Duration, on bool) {
	r.s.Emit(Record{Type: TypeRadio, T: int64(at), Node: int(id), On: on})
}

// StorageOp implements node.Observer.
func (r *Recorder) StorageOp(id packet.NodeID, write bool, seg, pkt, bytes int) {
	r.s.Emit(Record{
		Type: TypeStorage, T: int64(r.now()), Node: int(id),
		Write: write, Seg: seg, Pkt: pkt, Bytes: bytes,
	})
}
