package moap

import (
	"mnp/internal/node"
	"mnp/internal/protoreg"
)

// ApplyOptions overlays declarative option strings onto a MOAP
// configuration; unknown keys or malformed values are errors.
func ApplyOptions(cfg *Config, options map[string]string) error {
	o := protoreg.NewOpts(options)
	o.Duration("data_interval", &cfg.DataInterval)
	o.Duration("publish_interval", &cfg.PublishInterval)
	o.Duration("subscribe_delay_max", &cfg.SubscribeDelayMax)
	o.Duration("rx_timeout", &cfg.RxTimeout)
	o.Int("window", &cfg.Window)
	o.Int("max_naks", &cfg.MaxNaks)
	return o.Err()
}

func init() {
	protoreg.Register("moap", func(b protoreg.Build) (node.Protocol, error) {
		cfg := DefaultConfig()
		if b.Base {
			cfg.Base = true
			cfg.Image = b.Image
		}
		if err := ApplyOptions(&cfg, b.Options); err != nil {
			return nil, err
		}
		return New(cfg), nil
	})
}
