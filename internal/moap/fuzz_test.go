package moap

import (
	"math/rand"
	"testing"

	"mnp/internal/image"
	"mnp/internal/node/nodetest"
)

// TestFuzzNeverPanics hammers MOAP nodes (receiver and base) with
// arbitrary packets and timer interleavings.
func TestFuzzNeverPanics(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt := nodetest.New(3)
		rt.Attach(New(DefaultConfig()))
		rt.Fuzz(rng, 2500)
	}
	img, err := image.Random(1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed + 500))
		cfg := DefaultConfig()
		cfg.Base = true
		cfg.Image = img
		rt := nodetest.New(0)
		rt.Attach(New(cfg))
		rt.Fuzz(rng, 2500)
	}
}
