package moap

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/node/nodetest"
	"mnp/internal/packet"
)

// tinyImage: 16 packets of 4 bytes (one MNP-nominal segment slice).
func tinyImage(t *testing.T) *image.Image {
	t.Helper()
	im, err := image.Random(1, 1, 23, image.WithSegmentPackets(16), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func newSourceRig(t *testing.T) (*MOAP, *nodetest.Runtime, *image.Image) {
	t.Helper()
	img := tinyImage(t)
	cfg := DefaultConfig()
	cfg.Base = true
	cfg.Image = img
	m := New(cfg)
	rt := nodetest.New(0)
	rt.Attach(m)
	return m, rt, img
}

func newSinkRig(t *testing.T) (*MOAP, *nodetest.Runtime) {
	t.Helper()
	m := New(DefaultConfig())
	rt := nodetest.New(9)
	rt.Attach(m)
	return m, rt
}

func countKind(rt *nodetest.Runtime, k packet.Kind) int {
	c := 0
	for _, p := range rt.Sent {
		if p.Kind() == k {
			c++
		}
	}
	return c
}

func TestSourcePublishesPeriodically(t *testing.T) {
	m, rt, _ := newSourceRig(t)
	if !m.Complete() || !rt.Done {
		t.Fatal("base not complete")
	}
	rt.Fire(timerPublish)
	if countKind(rt, packet.KindMoapPublish) != 1 {
		t.Fatal("no publish after timer")
	}
	if !rt.TimerPending(timerPublish) {
		t.Fatal("publish not rescheduled")
	}
}

func TestPublishSuppressedByNeighbor(t *testing.T) {
	m, rt, _ := newSourceRig(t)
	rt.Clock = 10 * time.Second
	m.OnPacket(&packet.MoapPublish{Src: 5, ProgramID: 1, Version: 1, Total: 16}, 5)
	rt.Fire(timerPublish)
	if countKind(rt, packet.KindMoapPublish) != 0 {
		t.Fatal("published immediately after hearing a neighbor publish")
	}
	// Long after, publishing resumes.
	rt.Clock = 100 * time.Second
	rt.Fire(timerPublish)
	if countKind(rt, packet.KindMoapPublish) != 1 {
		t.Fatal("suppression never lifted")
	}
}

func TestSubscribeStartsFullImageStream(t *testing.T) {
	m, rt, _ := newSourceRig(t)
	m.OnPacket(&packet.MoapSubscribe{Src: 9, DestID: 0, ProgramID: 1}, 9)
	for i := 0; i < 40 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	if got := countKind(rt, packet.KindMoapData); got != 16 {
		t.Fatalf("streamed %d packets, want 16", got)
	}
	// Sequence is 0..15 in order.
	seq := 0
	for _, p := range rt.Sent {
		if d, ok := p.(*packet.MoapData); ok {
			if int(d.Seq) != seq {
				t.Fatalf("out of order: got %d want %d", d.Seq, seq)
			}
			seq++
		}
	}
}

func TestNakGetsPriorityRetransmission(t *testing.T) {
	m, rt, _ := newSourceRig(t)
	m.OnPacket(&packet.MoapSubscribe{Src: 9, DestID: 0, ProgramID: 1}, 9)
	rt.Fire(timerTxData) // seq 0 out
	m.OnPacket(&packet.MoapNak{Src: 9, DestID: 0, ProgramID: 1, Seq: 0}, 9)
	rt.Fire(timerTxData) // NAK'd packet repeats before seq 1
	var seqs []int
	for _, p := range rt.Sent {
		if d, ok := p.(*packet.MoapData); ok {
			seqs = append(seqs, int(d.Seq))
		}
	}
	if len(seqs) != 2 || seqs[0] != 0 || seqs[1] != 0 {
		t.Fatalf("sequence %v, want [0 0]", seqs)
	}
	// Out-of-range and duplicate NAKs are ignored.
	m.OnPacket(&packet.MoapNak{Src: 9, DestID: 0, ProgramID: 1, Seq: 999}, 9)
	m.OnPacket(&packet.MoapNak{Src: 9, DestID: 3, ProgramID: 1, Seq: 1}, 9)
}

func TestPostPassNakReopensRepair(t *testing.T) {
	m, rt, _ := newSourceRig(t)
	m.OnPacket(&packet.MoapSubscribe{Src: 9, DestID: 0, ProgramID: 1}, 9)
	for i := 0; i < 40 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	before := countKind(rt, packet.KindMoapData)
	// The pass ended; a straggler NAK reopens the data pump.
	m.OnPacket(&packet.MoapNak{Src: 9, DestID: 0, ProgramID: 1, Seq: 7}, 9)
	rt.Fire(timerTxData)
	if got := countKind(rt, packet.KindMoapData); got != before+1 {
		t.Fatalf("post-pass NAK not served: %d -> %d", before, got)
	}
}

func TestReceiverSubscribesAndBecomesSource(t *testing.T) {
	m, rt := newSinkRig(t)
	img := tinyImage(t)
	m.OnPacket(&packet.MoapPublish{Src: 4, ProgramID: 1, Version: 1, Total: 16}, 4)
	if !rt.TimerPending(timerSubscribe) {
		t.Fatal("no subscribe scheduled")
	}
	rt.Fire(timerSubscribe)
	if countKind(rt, packet.KindMoapSubscribe) != 1 {
		t.Fatal("no subscribe sent")
	}
	for seq := 0; seq < 16; seq++ {
		payload, _ := img.FlatPayload(seq)
		m.OnPacket(&packet.MoapData{Src: 4, ProgramID: 1, Seq: uint16(seq), Total: 16, Payload: payload}, 4)
	}
	if !m.Complete() || !rt.Done {
		t.Fatal("receiver did not complete")
	}
	// Hop-by-hop: the completed receiver now publishes.
	if !rt.TimerPending(timerPublish) {
		t.Fatal("completed receiver is not a publisher")
	}
}

func TestSlidingWindowRejectsFarAheadPackets(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Window = 4
	m := New(cfg)
	rt := nodetest.New(9)
	rt.Attach(m)
	img, err := image.Random(1, 1, 29, image.WithSegmentPackets(32), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	m.OnPacket(&packet.MoapPublish{Src: 4, ProgramID: 1, Version: 1, Total: 32}, 4)
	rt.Fire(timerSubscribe)
	// seq 10 is outside [0, 4): dropped, and a NAK for 0 goes out.
	p10, _ := img.FlatPayload(10)
	m.OnPacket(&packet.MoapData{Src: 4, ProgramID: 1, Seq: 10, Total: 32, Payload: p10}, 4)
	if rt.EEPROM.Slots() != 0 {
		t.Fatal("out-of-window packet stored")
	}
	nak, _ := func() (*packet.MoapNak, bool) {
		for i := len(rt.Sent) - 1; i >= 0; i-- {
			if n, ok := rt.Sent[i].(*packet.MoapNak); ok {
				return n, true
			}
		}
		return nil, false
	}()
	if nak == nil || nak.Seq != 0 {
		t.Fatalf("expected NAK for seq 0, got %+v", nak)
	}
	// In-window packets are stored.
	p2, _ := img.FlatPayload(2)
	m.OnPacket(&packet.MoapData{Src: 4, ProgramID: 1, Seq: 2, Total: 32, Payload: p2}, 4)
	if rt.EEPROM.Slots() != 1 {
		t.Fatal("in-window packet not stored")
	}
}

func TestReceiverWatchdogNaksThenAbandons(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxNaks = 2
	m := New(cfg)
	rt := nodetest.New(9)
	rt.Attach(m)
	m.OnPacket(&packet.MoapPublish{Src: 4, ProgramID: 1, Version: 1, Total: 16}, 4)
	rt.Fire(timerSubscribe)
	rt.Fire(timerRxWatchdog) // NAK 1
	rt.Fire(timerRxWatchdog) // NAK 2
	rt.Fire(timerRxWatchdog) // gives up
	if got := countKind(rt, packet.KindMoapNak); got != 2 {
		t.Fatalf("NAKs = %d, want 2", got)
	}
	// A later publish restarts the handshake.
	m.OnPacket(&packet.MoapPublish{Src: 4, ProgramID: 1, Version: 1, Total: 16}, 4)
	if !rt.TimerPending(timerSubscribe) {
		t.Fatal("abandoned fetch not restartable")
	}
}
