package moap

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

func buildNet(t *testing.T, layout *topology.Layout, segments int, seed int64) (*node.Network, *sim.Kernel, *image.Image) {
	t.Helper()
	img, err := image.Random(1, segments, seed+9)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(seed)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return New(cfg), node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	return nw, kernel, img
}

func verify(t *testing.T, nw *node.Network, img *image.Image) {
	t.Helper()
	for _, n := range nw.Nodes {
		data, err := img.Reassemble(func(seg, pkt int) []byte { return n.EEPROM().Read(seg, pkt) })
		if err != nil {
			t.Fatalf("node %v: %v", n.ID(), err)
		}
		if !img.Verify(data) {
			t.Fatalf("node %v image mismatch", n.ID())
		}
		if n.EEPROM().MaxWriteCount() > 1 {
			t.Fatalf("node %v rewrote EEPROM", n.ID())
		}
	}
}

func TestSingleHopTransfer(t *testing.T) {
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	nw, _, img := buildNet(t, l, 1, 1)
	if !nw.RunUntilComplete(2 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	verify(t, nw, img)
}

func TestMultihopRipple(t *testing.T) {
	// MOAP is hop-by-hop: node 2 (out of the base's range) can only get
	// the image after node 1 holds all of it.
	l, err := topology.Line(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	nw, _, img := buildNet(t, l, 1, 2)
	if !nw.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	verify(t, nw, img)
	// Strict hop-by-hop ordering of completion times.
	for i := 1; i < 4; i++ {
		a := nw.Node(packet.NodeID(i - 1)).CompletedAt()
		b := nw.Node(packet.NodeID(i)).CompletedAt()
		if i > 1 && b < a {
			t.Fatalf("node %d completed before its upstream (%v < %v)", i, b, a)
		}
	}
}

func TestGridTransfer(t *testing.T) {
	l, err := topology.Grid(3, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	nw, _, img := buildNet(t, l, 1, 3)
	if !nw.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	verify(t, nw, img)
}

func TestRadioAlwaysOn(t *testing.T) {
	l, err := topology.Line(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	nw, kernel, _ := buildNet(t, l, 1, 4)
	offSeen := false
	kernel.RunUntil(func() bool {
		for _, n := range nw.Nodes {
			if !n.IsRadioOn() {
				offSeen = true
			}
		}
		return nw.AllCompleted()
	}, 2*time.Hour)
	if offSeen {
		t.Fatal("a MOAP radio turned off")
	}
}

func TestBaseWithoutImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.New(1)
	l, _ := topology.Line(1, 10)
	m, _ := radio.NewMedium(k, l, radio.DefaultParams(), 1)
	n, err := node.New(0, k, m, New(Config{Base: true}), node.Config{TxPower: radio.PowerSim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
}
