// Package moap implements the MOAP baseline (Stathopoulos et al.):
// multihop over-the-air programming with strictly hop-by-hop
// dissemination — a node must hold the entire image before serving
// others — a publish/subscribe handshake to limit concurrent senders,
// unicast NAK repair, and a sliding window for loss bookkeeping. The
// radio stays on throughout.
package moap

import (
	"fmt"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Timer IDs.
const (
	timerPublish node.TimerID = iota + 1
	timerSubscribe
	timerTxData
	timerRxWatchdog
)

// Config tunes the baseline.
type Config struct {
	// Base marks the seeding node.
	Base bool
	// Image is required at the base.
	Image *image.Image
	// DataInterval paces image transmission.
	DataInterval time.Duration
	// PublishInterval separates publish announcements.
	PublishInterval time.Duration
	// SubscribeDelayMax bounds the random delay before subscribing.
	SubscribeDelayMax time.Duration
	// RxTimeout bounds the wait for the next packet before NAKing.
	RxTimeout time.Duration
	// Window is the sliding-window size: packets more than Window ahead
	// of the first missing packet are dropped (limited-RAM tracking).
	Window int
	// MaxNaks bounds consecutive unanswered NAKs before abandoning the
	// transfer (a later publish restarts it).
	MaxNaks int
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		DataInterval:      30 * time.Millisecond,
		PublishInterval:   2 * time.Second,
		SubscribeDelayMax: 500 * time.Millisecond,
		RxTimeout:         2 * time.Second,
		Window:            32,
		MaxNaks:           8,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.PublishInterval == 0 {
		c.PublishInterval = d.PublishInterval
	}
	if c.SubscribeDelayMax == 0 {
		c.SubscribeDelayMax = d.SubscribeDelayMax
	}
	if c.RxTimeout == 0 {
		c.RxTimeout = d.RxTimeout
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.MaxNaks == 0 {
		c.MaxNaks = d.MaxNaks
	}
	return c
}

// MOAP is one node's protocol instance.
type MOAP struct {
	cfg Config
	rt  node.Runtime

	programID uint8
	total     int
	nominal   int
	complete  bool

	// Receiver side.
	have      []bool
	haveCount int
	fetching  bool
	source    packet.NodeID
	naks      int
	subDue    bool
	subTo     packet.NodeID

	// Sender side.
	serving  bool
	nextSeq  int
	resend   []uint16
	heardPub time.Duration
}

var _ node.Protocol = (*MOAP)(nil)

// New returns a MOAP instance.
func New(cfg Config) *MOAP {
	return &MOAP{cfg: cfg.withDefaults(), nominal: image.DefaultSegmentPackets}
}

// Complete reports whether this node holds the whole image.
func (m *MOAP) Complete() bool { return m.complete }

// Init implements node.Protocol.
func (m *MOAP) Init(rt node.Runtime) {
	m.rt = rt
	rt.RadioOn() // MOAP keeps the radio on throughout
	if !m.cfg.Base {
		return
	}
	if m.cfg.Image == nil {
		panic("moap: base station requires an image")
	}
	im := m.cfg.Image
	m.programID = im.ProgramID()
	m.total = im.TotalPackets()
	for seq := 0; seq < m.total; seq++ {
		payload, _ := im.FlatPayload(seq)
		if err := rt.Store(seq/m.nominal+1, seq%m.nominal, payload); err != nil {
			panic(fmt.Sprintf("moap: preloading base image: %v", err))
		}
	}
	m.becomeSource()
}

func (m *MOAP) becomeSource() {
	m.complete = true
	m.rt.Complete()
	m.schedulePublish()
}

func (m *MOAP) schedulePublish() {
	jitter := time.Duration(m.rt.Rand().Int63n(int64(m.cfg.PublishInterval)))
	m.rt.SetTimer(timerPublish, m.cfg.PublishInterval/2+jitter)
}

// OnTimer implements node.Protocol.
func (m *MOAP) OnTimer(id node.TimerID) {
	switch id {
	case timerPublish:
		m.publishTick()
	case timerSubscribe:
		m.sendSubscribe()
	case timerTxData:
		m.txTick()
	case timerRxWatchdog:
		m.rxWatchdog()
	}
}

// OnPacket implements node.Protocol.
func (m *MOAP) OnPacket(p packet.Packet, from packet.NodeID) {
	switch pkt := p.(type) {
	case *packet.MoapPublish:
		m.onPublish(pkt)
	case *packet.MoapSubscribe:
		m.onSubscribe(pkt)
	case *packet.MoapData:
		m.onData(pkt)
	case *packet.MoapNak:
		m.onNak(pkt)
	}
}

// --- sender side ---

func (m *MOAP) publishTick() {
	if !m.complete || m.serving {
		return
	}
	// Link-local suppression: defer if a neighbor published recently.
	if m.heardPub > 0 && m.rt.Now()-m.heardPub < m.cfg.PublishInterval {
		m.schedulePublish()
		return
	}
	_ = m.rt.Send(&packet.MoapPublish{
		Src:       m.rt.ID(),
		ProgramID: m.programID,
		Version:   1,
		Total:     uint16(m.total),
	})
	m.schedulePublish()
}

func (m *MOAP) onSubscribe(s *packet.MoapSubscribe) {
	if !m.complete || s.DestID != m.rt.ID() || s.ProgramID != m.programID {
		return
	}
	if m.serving {
		return // current pass serves the new subscriber too
	}
	m.serving = true
	m.nextSeq = 0
	m.resend = nil
	m.rt.CancelTimer(timerPublish)
	m.rt.SetTimer(timerTxData, m.cfg.DataInterval)
}

func (m *MOAP) txTick() {
	if !m.serving {
		return
	}
	var seq int
	switch {
	case len(m.resend) > 0:
		// Repair traffic has priority: NAKs mean the window stalled.
		seq = int(m.resend[0])
		m.resend = m.resend[1:]
	case m.nextSeq < m.total:
		seq = m.nextSeq
		m.nextSeq++
	default:
		// Pass complete; linger in a short repair window via NAKs, then
		// resume publishing for further subscribers.
		m.serving = false
		m.schedulePublish()
		return
	}
	payload := m.rt.Load(seq/m.nominal+1, seq%m.nominal)
	if payload != nil {
		_ = m.rt.Send(&packet.MoapData{
			Src:       m.rt.ID(),
			ProgramID: m.programID,
			Seq:       uint16(seq),
			Total:     uint16(m.total),
			Payload:   payload,
		})
	}
	m.rt.SetTimer(timerTxData, m.cfg.DataInterval)
}

func (m *MOAP) onNak(n *packet.MoapNak) {
	if !m.complete || n.DestID != m.rt.ID() || n.ProgramID != m.programID {
		return
	}
	if int(n.Seq) >= m.total {
		return
	}
	for _, r := range m.resend {
		if r == n.Seq {
			return
		}
	}
	m.resend = append(m.resend, n.Seq)
	if !m.serving {
		// Post-pass repair: reopen the data pump just for the repairs.
		m.serving = true
		m.nextSeq = m.total
		m.rt.CancelTimer(timerPublish)
		m.rt.SetTimer(timerTxData, m.cfg.DataInterval)
	}
}

// --- receiver side ---

func (m *MOAP) onPublish(p *packet.MoapPublish) {
	if m.complete {
		m.heardPub = m.rt.Now() // suppression among publishers
		return
	}
	if m.have == nil {
		if p.Total == 0 {
			return
		}
		m.programID = p.ProgramID
		m.total = int(p.Total)
		m.have = make([]bool, m.total)
	}
	if p.ProgramID != m.programID || m.fetching || m.subDue {
		return
	}
	m.subDue = true
	m.subTo = p.Src
	delay := time.Duration(m.rt.Rand().Int63n(int64(m.cfg.SubscribeDelayMax)))
	m.rt.SetTimer(timerSubscribe, delay)
}

func (m *MOAP) sendSubscribe() {
	if !m.subDue || m.complete {
		m.subDue = false
		return
	}
	m.subDue = false
	_ = m.rt.Send(&packet.MoapSubscribe{
		Src:       m.rt.ID(),
		DestID:    m.subTo,
		ProgramID: m.programID,
	})
	m.fetching = true
	m.source = m.subTo
	m.naks = 0
	m.rt.SetTimer(timerRxWatchdog, m.cfg.RxTimeout)
}

func (m *MOAP) firstMissing() int {
	for seq, ok := range m.have {
		if !ok {
			return seq
		}
	}
	return -1
}

func (m *MOAP) onData(d *packet.MoapData) {
	if m.complete {
		return
	}
	if m.have == nil {
		if d.Total == 0 {
			return
		}
		m.programID = d.ProgramID
		m.total = int(d.Total)
		m.have = make([]bool, m.total)
	}
	if d.ProgramID != m.programID {
		return
	}
	seq := int(d.Seq)
	if seq >= m.total || m.have[seq] {
		return
	}
	first := m.firstMissing()
	if first >= 0 && seq >= first+m.cfg.Window {
		// Outside the sliding window: cannot track it; demand the
		// window head instead.
		m.nakFirstMissing()
		return
	}
	if err := m.rt.Store(seq/m.nominal+1, seq%m.nominal, d.Payload); err != nil {
		return
	}
	m.have[seq] = true
	m.haveCount++
	m.naks = 0
	if m.fetching {
		m.rt.SetTimer(timerRxWatchdog, m.cfg.RxTimeout)
	}
	if m.haveCount == m.total {
		m.fetching = false
		m.rt.CancelTimer(timerRxWatchdog)
		m.becomeSource() // hop-by-hop: now a publisher
	}
}

func (m *MOAP) rxWatchdog() {
	if !m.fetching || m.complete {
		return
	}
	if m.naks >= m.cfg.MaxNaks {
		// Give up; the next publish restarts the handshake.
		m.fetching = false
		return
	}
	m.nakFirstMissing()
	m.rt.SetTimer(timerRxWatchdog, m.cfg.RxTimeout)
}

func (m *MOAP) nakFirstMissing() {
	first := m.firstMissing()
	if first < 0 {
		return
	}
	m.naks++
	_ = m.rt.Send(&packet.MoapNak{
		Src:       m.rt.ID(),
		DestID:    m.source,
		ProgramID: m.programID,
		Seq:       uint16(first),
	})
}
