package xnp

import (
	"mnp/internal/node"
	"mnp/internal/protoreg"
)

// ApplyOptions overlays declarative option strings onto an XNP
// configuration; unknown keys or malformed values are errors.
func ApplyOptions(cfg *Config, options map[string]string) error {
	o := protoreg.NewOpts(options)
	o.Duration("data_interval", &cfg.DataInterval)
	o.Duration("query_interval", &cfg.QueryInterval)
	o.Duration("status_delay_max", &cfg.StatusDelayMax)
	o.Int("max_quiet_rounds", &cfg.MaxQuietRounds)
	return o.Err()
}

func init() {
	protoreg.Register("xnp", func(b protoreg.Build) (node.Protocol, error) {
		cfg := DefaultConfig()
		if b.Base {
			cfg.Base = true
			cfg.Image = b.Image
		}
		if err := ApplyOptions(&cfg, b.Options); err != nil {
			return nil, err
		}
		return New(cfg), nil
	})
}
