package xnp

import (
	"testing"

	"mnp/internal/image"
	"mnp/internal/node/nodetest"
	"mnp/internal/packet"
)

// tinyImage: 16 packets of 4 bytes.
func tinyImage(t *testing.T) *image.Image {
	t.Helper()
	im, err := image.Random(1, 1, 31, image.WithSegmentPackets(16), image.WithPayloadSize(4))
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func newBaseRig(t *testing.T) (*XNP, *nodetest.Runtime, *image.Image) {
	t.Helper()
	img := tinyImage(t)
	cfg := DefaultConfig()
	cfg.Base = true
	cfg.Image = img
	x := New(cfg)
	rt := nodetest.New(0)
	rt.Attach(x)
	return x, rt, img
}

func countKind(rt *nodetest.Runtime, k packet.Kind) int {
	c := 0
	for _, p := range rt.Sent {
		if p.Kind() == k {
			c++
		}
	}
	return c
}

func TestBaseBroadcastPassInOrder(t *testing.T) {
	x, rt, _ := newBaseRig(t)
	_ = x
	for i := 0; i < 40 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	if got := countKind(rt, packet.KindXnpData); got != 16 {
		t.Fatalf("broadcast %d packets, want 16", got)
	}
	seq := 0
	for _, p := range rt.Sent {
		if d, ok := p.(*packet.XnpData); ok {
			if int(d.Seq) != seq || d.Total != 16 {
				t.Fatalf("bad data %+v at position %d", d, seq)
			}
			seq++
		}
	}
	// After the pass, the base enters query rounds.
	if !rt.TimerPending(timerQueryRound) {
		t.Fatal("no query round scheduled after the pass")
	}
}

func TestQueryRoundsCollectAndRetransmit(t *testing.T) {
	x, rt, _ := newBaseRig(t)
	for i := 0; i < 40 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	rt.Fire(timerQueryRound)
	if countKind(rt, packet.KindXnpQueryStatus) != 1 {
		t.Fatal("no query broadcast")
	}
	// Two fix requests come back.
	x.OnPacket(&packet.XnpStatus{Src: 9, DestID: 0, ProgramID: 1, Seq: 3}, 9)
	x.OnPacket(&packet.XnpStatus{Src: 9, DestID: 0, ProgramID: 1, Seq: 3}, 9) // duplicate ignored
	x.OnPacket(&packet.XnpStatus{Src: 8, DestID: 0, ProgramID: 1, Seq: 7}, 8)
	x.OnPacket(&packet.XnpStatus{Src: 8, DestID: 0, ProgramID: 1, Seq: packet.XnpStatusComplete}, 8)
	before := countKind(rt, packet.KindXnpData)
	rt.Fire(timerQueryRound) // sees pending fixes, reopens data pump
	rt.Fire(timerTxData)
	rt.Fire(timerTxData)
	var retrans []int
	for _, p := range rt.Sent[len(rt.Sent)-2:] {
		if d, ok := p.(*packet.XnpData); ok {
			retrans = append(retrans, int(d.Seq))
		}
	}
	if countKind(rt, packet.KindXnpData) != before+2 || len(retrans) != 2 ||
		retrans[0] != 3 || retrans[1] != 7 {
		t.Fatalf("retransmissions = %v, want [3 7]", retrans)
	}
}

func TestQuietRoundsSlowDown(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base = true
	cfg.Image = tinyImage(t)
	cfg.MaxQuietRounds = 2
	x := New(cfg)
	rt := nodetest.New(0)
	rt.Attach(x)
	_ = x
	for i := 0; i < 40 && rt.TimerPending(timerTxData); i++ {
		rt.Fire(timerTxData)
	}
	// Quiet rounds keep probing, eventually at a slower cadence; the
	// timer must always be re-armed (never a dead stop).
	for i := 0; i < 6; i++ {
		if !rt.TimerPending(timerQueryRound) {
			t.Fatalf("query round dead-stopped at round %d", i)
		}
		rt.Fire(timerQueryRound)
	}
}

func TestReceiverStoresAndCompletes(t *testing.T) {
	x := New(DefaultConfig())
	rt := nodetest.New(9)
	rt.Attach(x)
	img := tinyImage(t)
	for seq := 0; seq < 16; seq++ {
		payload, _ := img.FlatPayload(seq)
		x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 1, Seq: uint16(seq), Total: 16, Payload: payload}, 0)
	}
	if !rt.Done {
		t.Fatal("receiver incomplete after all packets")
	}
	if rt.EEPROM.MaxWriteCount() != 1 {
		t.Fatal("write-once violated")
	}
	// Duplicates are not rewritten.
	p0, _ := img.FlatPayload(0)
	x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 1, Seq: 0, Total: 16, Payload: p0}, 0)
	if rt.EEPROM.MaxWriteCount() != 1 {
		t.Fatal("duplicate rewrote EEPROM")
	}
}

func TestReceiverReportsMissingBatch(t *testing.T) {
	x := New(DefaultConfig())
	rt := nodetest.New(9)
	rt.Attach(x)
	img := tinyImage(t)
	// Receive only even packets: 8 missing.
	for seq := 0; seq < 16; seq += 2 {
		payload, _ := img.FlatPayload(seq)
		x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 1, Seq: uint16(seq), Total: 16, Payload: payload}, 0)
	}
	x.OnPacket(&packet.XnpQueryStatus{Src: 0, ProgramID: 1}, 0)
	if !rt.TimerPending(timerStatusReply) {
		t.Fatal("no status reply scheduled")
	}
	rt.Fire(timerStatusReply)
	if got := countKind(rt, packet.KindXnpStatus); got != 8 {
		t.Fatalf("status batch = %d, want all 8 missing", got)
	}
	var seqs []int
	for _, p := range rt.Sent {
		if s, ok := p.(*packet.XnpStatus); ok {
			seqs = append(seqs, int(s.Seq))
		}
	}
	for i, s := range seqs {
		if s != 2*i+1 {
			t.Fatalf("status seqs %v, want odd packets", seqs)
		}
	}
}

func TestCompleteReceiverStaysSilent(t *testing.T) {
	x := New(DefaultConfig())
	rt := nodetest.New(9)
	rt.Attach(x)
	img := tinyImage(t)
	for seq := 0; seq < 16; seq++ {
		payload, _ := img.FlatPayload(seq)
		x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 1, Seq: uint16(seq), Total: 16, Payload: payload}, 0)
	}
	x.OnPacket(&packet.XnpQueryStatus{Src: 0, ProgramID: 1}, 0)
	rt.Fire(timerStatusReply)
	if countKind(rt, packet.KindXnpStatus) != 0 {
		t.Fatal("complete receiver responded to query")
	}
}

func TestReceiverIgnoresForeignProgram(t *testing.T) {
	x := New(DefaultConfig())
	rt := nodetest.New(9)
	rt.Attach(x)
	img := tinyImage(t)
	p0, _ := img.FlatPayload(0)
	x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 1, Seq: 0, Total: 16, Payload: p0}, 0)
	x.OnPacket(&packet.XnpData{Src: 0, ProgramID: 2, Seq: 1, Total: 16, Payload: p0}, 0)
	if rt.EEPROM.Slots() != 1 {
		t.Fatalf("stored %d slots, want 1 (foreign program ignored)", rt.EEPROM.Slots())
	}
}
