// Package xnp implements the XNP baseline: TinyOS 1.1's single-hop
// network reprogramming. The base station broadcasts the whole image
// packet by packet, then runs query rounds in which in-range nodes
// report their first missing packet and the base retransmits. Nodes
// out of the base station's radio range never receive the program —
// the limitation that motivates multihop protocols like MNP.
package xnp

import (
	"fmt"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
)

// Timer IDs.
const (
	timerTxData node.TimerID = iota + 1
	timerQueryRound
	timerStatusReply
)

// Config tunes the baseline.
type Config struct {
	// Base marks the (single) source.
	Base bool
	// Image is required at the base.
	Image *image.Image
	// DataInterval paces the broadcast.
	DataInterval time.Duration
	// QueryInterval separates retransmission query rounds.
	QueryInterval time.Duration
	// StatusDelayMax bounds the receivers' random status-reply delay.
	StatusDelayMax time.Duration
	// MaxQuietRounds is how many consecutive empty query rounds end the
	// repair phase.
	MaxQuietRounds int
}

// DefaultConfig returns the parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		DataInterval:   30 * time.Millisecond,
		QueryInterval:  2 * time.Second,
		StatusDelayMax: 500 * time.Millisecond,
		MaxQuietRounds: 3,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.DataInterval == 0 {
		c.DataInterval = d.DataInterval
	}
	if c.QueryInterval == 0 {
		c.QueryInterval = d.QueryInterval
	}
	if c.StatusDelayMax == 0 {
		c.StatusDelayMax = d.StatusDelayMax
	}
	if c.MaxQuietRounds == 0 {
		c.MaxQuietRounds = d.MaxQuietRounds
	}
	return c
}

// XNP is one node's protocol instance.
type XNP struct {
	cfg Config
	rt  node.Runtime

	// Base side.
	nextSeq     int
	retransmits []uint16
	quietRounds int
	repairing   bool

	// Receiver side.
	programID uint8
	total     int
	have      []bool
	haveCount int
	nominal   int
	statusDue bool
}

var _ node.Protocol = (*XNP)(nil)

// New returns an XNP instance.
func New(cfg Config) *XNP {
	return &XNP{cfg: cfg.withDefaults(), nominal: image.DefaultSegmentPackets}
}

// Init implements node.Protocol.
func (x *XNP) Init(rt node.Runtime) {
	x.rt = rt
	rt.RadioOn() // XNP keeps the radio on throughout
	if !x.cfg.Base {
		return
	}
	if x.cfg.Image == nil {
		panic("xnp: base station requires an image")
	}
	im := x.cfg.Image
	x.programID = im.ProgramID()
	x.total = im.TotalPackets()
	for seq := 0; seq < x.total; seq++ {
		payload, _ := im.FlatPayload(seq)
		if err := rt.Store(seq/x.nominal+1, seq%x.nominal, payload); err != nil {
			panic(fmt.Sprintf("xnp: preloading base image: %v", err))
		}
	}
	rt.Complete()
	rt.SetTimer(timerTxData, x.cfg.DataInterval)
}

// slot maps a flat sequence number to an EEPROM (segment, packet) slot.
func (x *XNP) slot(seq int) (seg, pkt int) {
	return seq/x.nominal + 1, seq % x.nominal
}

// OnTimer implements node.Protocol.
func (x *XNP) OnTimer(id node.TimerID) {
	switch id {
	case timerTxData:
		x.txTick()
	case timerQueryRound:
		x.queryRound()
	case timerStatusReply:
		x.sendStatus()
	}
}

// OnPacket implements node.Protocol.
func (x *XNP) OnPacket(p packet.Packet, from packet.NodeID) {
	switch pkt := p.(type) {
	case *packet.XnpData:
		x.onData(pkt)
	case *packet.XnpQueryStatus:
		x.onQuery(pkt)
	case *packet.XnpStatus:
		x.onStatus(pkt)
	}
}

// --- base side ---

func (x *XNP) txTick() {
	if !x.cfg.Base {
		return
	}
	var seq int
	switch {
	case x.nextSeq < x.total:
		seq = x.nextSeq
		x.nextSeq++
	case len(x.retransmits) > 0:
		seq = int(x.retransmits[0])
		x.retransmits = x.retransmits[1:]
	default:
		// Broadcast pass done: start (or continue) query rounds.
		x.repairing = true
		x.rt.SetTimer(timerQueryRound, x.cfg.QueryInterval)
		return
	}
	seg, pkt := x.slot(seq)
	payload := x.rt.Load(seg, pkt)
	if payload != nil {
		_ = x.rt.Send(&packet.XnpData{
			Src:       x.rt.ID(),
			ProgramID: x.programID,
			Seq:       uint16(seq),
			Total:     uint16(x.total),
			Payload:   payload,
		})
	}
	x.rt.SetTimer(timerTxData, x.cfg.DataInterval)
}

func (x *XNP) queryRound() {
	if !x.cfg.Base {
		return
	}
	if len(x.retransmits) > 0 {
		// Requests arrived during the round: serve them.
		x.quietRounds = 0
		x.rt.SetTimer(timerTxData, x.cfg.DataInterval)
		return
	}
	x.quietRounds++
	_ = x.rt.Send(&packet.XnpQueryStatus{Src: x.rt.ID(), ProgramID: x.programID})
	interval := x.cfg.QueryInterval
	if x.quietRounds > x.cfg.MaxQuietRounds {
		// In-range nodes look satisfied; keep probing slowly in case a
		// status reply was simply lost.
		interval *= 10
	}
	x.rt.SetTimer(timerQueryRound, interval)
}

func (x *XNP) onStatus(s *packet.XnpStatus) {
	if !x.cfg.Base || s.DestID != x.rt.ID() || s.Seq == packet.XnpStatusComplete {
		return
	}
	seq := s.Seq
	for _, r := range x.retransmits {
		if r == seq {
			return
		}
	}
	x.retransmits = append(x.retransmits, seq)
}

// --- receiver side ---

func (x *XNP) onData(d *packet.XnpData) {
	if x.cfg.Base {
		return
	}
	if x.have == nil {
		if d.Total == 0 {
			return
		}
		x.programID = d.ProgramID
		x.total = int(d.Total)
		x.have = make([]bool, x.total)
	}
	if d.ProgramID != x.programID {
		return
	}
	seq := int(d.Seq)
	if seq >= x.total || x.have[seq] {
		return
	}
	if err := x.rt.Store(seq/x.nominal+1, seq%x.nominal, d.Payload); err != nil {
		return
	}
	x.have[seq] = true
	x.haveCount++
	if x.haveCount == x.total {
		x.rt.Complete()
	}
}

func (x *XNP) onQuery(q *packet.XnpQueryStatus) {
	if x.cfg.Base || x.have == nil || x.haveCount == x.total {
		return
	}
	if x.statusDue {
		return
	}
	x.statusDue = true
	delay := time.Duration(x.rt.Rand().Int63n(int64(x.cfg.StatusDelayMax)))
	x.rt.SetTimer(timerStatusReply, delay)
}

func (x *XNP) sendStatus() {
	x.statusDue = false
	if x.have == nil || x.haveCount == x.total {
		return
	}
	// Report up to statusBatch missing packets per round, one fix
	// request each (the MAC spaces the burst).
	const statusBatch = 8
	sent := 0
	for seq, ok := range x.have {
		if ok {
			continue
		}
		err := x.rt.Send(&packet.XnpStatus{
			Src:       x.rt.ID(),
			DestID:    0, // the base station
			ProgramID: x.programID,
			Seq:       uint16(seq),
		})
		if err != nil {
			return // MAC queue full; the next round retries
		}
		if sent++; sent == statusBatch {
			return
		}
	}
}
