package xnp

import (
	"testing"
	"time"

	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

func buildNet(t *testing.T, layout *topology.Layout, segments int, seed int64) (*node.Network, *sim.Kernel, *image.Image) {
	t.Helper()
	img, err := image.Random(1, segments, seed+9)
	if err != nil {
		t.Fatal(err)
	}
	kernel := sim.New(seed)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), seed+1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		cfg := DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return New(cfg), node.Config{TxPower: radio.PowerSim}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw.Start()
	return nw, kernel, img
}

func TestSingleHopCompletes(t *testing.T) {
	l, err := topology.Grid(2, 2, 10) // all within 27 ft of the base
	if err != nil {
		t.Fatal(err)
	}
	nw, _, img := buildNet(t, l, 1, 1)
	if !nw.RunUntilComplete(time.Hour) {
		t.Fatalf("incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
	for _, n := range nw.Nodes {
		data, err := img.Reassemble(func(seg, pkt int) []byte { return n.EEPROM().Read(seg, pkt) })
		if err != nil {
			t.Fatalf("node %v: %v", n.ID(), err)
		}
		if !img.Verify(data) {
			t.Fatalf("node %v image mismatch", n.ID())
		}
		if n.EEPROM().MaxWriteCount() > 1 {
			t.Fatalf("node %v rewrote EEPROM", n.ID())
		}
	}
}

func TestOutOfRangeNodesNeverComplete(t *testing.T) {
	// The defining XNP limitation: node 2 at 40 ft (range 27 ft) gets
	// nothing.
	l, err := topology.Line(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	nw, kernel, _ := buildNet(t, l, 1, 2)
	kernel.Run(20 * time.Minute)
	if !nw.Node(1).Completed() {
		t.Fatal("in-range node incomplete")
	}
	if nw.Node(2).Completed() {
		t.Fatal("out-of-range node completed under single-hop XNP")
	}
}

func TestRetransmissionRoundsRepairLoss(t *testing.T) {
	// A lossy single hop still completes thanks to query/status rounds.
	l, err := topology.Line(2, 24) // ~89% of range: heavy loss
	if err != nil {
		t.Fatal(err)
	}
	nw, _, _ := buildNet(t, l, 1, 3)
	if !nw.RunUntilComplete(4 * time.Hour) {
		t.Fatalf("lossy XNP incomplete: %d/%d", nw.CompletedCount(), len(nw.Nodes))
	}
}

func TestBaseWithoutImagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.New(1)
	l, _ := topology.Line(1, 10)
	m, _ := radio.NewMedium(k, l, radio.DefaultParams(), 1)
	n, err := node.New(0, k, m, New(Config{Base: true}), node.Config{TxPower: radio.PowerSim}, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
}
