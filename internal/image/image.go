// Package image models the program image being disseminated: its
// division into segments and packets, and reassembly/verification on
// the receiving side.
//
// MNP divides a program into segments of a fixed number of packets
// (128 in the paper, so that a segment's loss bitmap fits into a radio
// packet) and each packet carries a fixed-size payload (22 bytes). The
// final segment and final packet may be short.
package image

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
)

const (
	// DefaultSegmentPackets is the paper's segment size: 128 packets,
	// so a MissingVector is at most 16 bytes.
	DefaultSegmentPackets = 128
	// DefaultPayloadSize is the paper's per-packet data payload.
	DefaultPayloadSize = 22
	// SegmentBytes is the data volume of one full segment
	// (128 × 22 B = 2816 B ≈ 2.8 KB, matching the paper's
	// "1 segment (2.8KB) … 10 segments (28.2KB)" program sizes).
	SegmentBytes = DefaultSegmentPackets * DefaultPayloadSize
)

// Image is an immutable program image plus its packetization geometry.
type Image struct {
	programID   uint8
	data        []byte
	payloadSize int
	segPackets  int
}

// Option customizes image geometry.
type Option func(*Image)

// WithPayloadSize overrides the per-packet payload size.
func WithPayloadSize(n int) Option {
	return func(im *Image) { im.payloadSize = n }
}

// WithSegmentPackets overrides the packets-per-segment count.
func WithSegmentPackets(n int) Option {
	return func(im *Image) { im.segPackets = n }
}

// New wraps data as a program image. The data is copied.
func New(programID uint8, data []byte, opts ...Option) (*Image, error) {
	im := &Image{
		programID:   programID,
		data:        append([]byte(nil), data...),
		payloadSize: DefaultPayloadSize,
		segPackets:  DefaultSegmentPackets,
	}
	for _, o := range opts {
		o(im)
	}
	if len(im.data) == 0 {
		return nil, fmt.Errorf("image: empty program data")
	}
	if im.payloadSize <= 0 || im.payloadSize > 200 {
		return nil, fmt.Errorf("image: payload size %d out of range (0, 200]", im.payloadSize)
	}
	if im.segPackets <= 0 || im.segPackets > 128 {
		return nil, fmt.Errorf("image: segment packets %d out of range (0, 128]", im.segPackets)
	}
	if im.Segments() > 255 {
		return nil, fmt.Errorf("image: %d segments exceeds the 1-byte segment ID space", im.Segments())
	}
	return im, nil
}

// Random builds a deterministic pseudo-random image of exactly
// segments full segments, seeded by seed. Experiments use it so that a
// run is reproducible and reassembled images can be verified
// byte-for-byte.
func Random(programID uint8, segments int, seed int64, opts ...Option) (*Image, error) {
	if segments <= 0 {
		return nil, fmt.Errorf("image: segments must be positive, got %d", segments)
	}
	probe, err := New(programID, []byte{0}, opts...)
	if err != nil {
		return nil, err
	}
	size := segments * probe.segPackets * probe.payloadSize
	data := make([]byte, size)
	rng := rand.New(rand.NewSource(seed))
	rng.Read(data)
	return New(programID, data, opts...)
}

// ProgramID returns the image's program identifier.
func (im *Image) ProgramID() uint8 { return im.programID }

// Size returns the program size in bytes.
func (im *Image) Size() int { return len(im.data) }

// PayloadSize returns the per-packet payload size.
func (im *Image) PayloadSize() int { return im.payloadSize }

// SegmentPackets returns the nominal packets-per-segment count.
func (im *Image) SegmentPackets() int { return im.segPackets }

// TotalPackets returns the number of packets across all segments.
func (im *Image) TotalPackets() int {
	return (len(im.data) + im.payloadSize - 1) / im.payloadSize
}

// Segments returns the number of segments. Segment IDs are 1-based,
// 1..Segments().
func (im *Image) Segments() int {
	return (im.TotalPackets() + im.segPackets - 1) / im.segPackets
}

// PacketsIn returns the number of packets in segment seg (1-based);
// only the final segment may be short.
func (im *Image) PacketsIn(seg int) (int, error) {
	if seg < 1 || seg > im.Segments() {
		return 0, fmt.Errorf("image: segment %d out of range [1,%d]", seg, im.Segments())
	}
	if seg < im.Segments() {
		return im.segPackets, nil
	}
	n := im.TotalPackets() - (im.Segments()-1)*im.segPackets
	return n, nil
}

// Payload returns the payload of packet pkt (0-based) in segment seg
// (1-based). The final packet of the image may be shorter than
// PayloadSize.
func (im *Image) Payload(seg, pkt int) ([]byte, error) {
	n, err := im.PacketsIn(seg)
	if err != nil {
		return nil, err
	}
	if pkt < 0 || pkt >= n {
		return nil, fmt.Errorf("image: packet %d out of range [0,%d) in segment %d", pkt, n, seg)
	}
	return im.FlatPayload((seg-1)*im.segPackets + pkt)
}

// FlatPayload returns the payload of packet seq in flat (whole-image)
// numbering, 0-based. MOAP and XNP address packets this way.
func (im *Image) FlatPayload(seq int) ([]byte, error) {
	if seq < 0 || seq >= im.TotalPackets() {
		return nil, fmt.Errorf("image: flat packet %d out of range [0,%d)", seq, im.TotalPackets())
	}
	lo := seq * im.payloadSize
	hi := lo + im.payloadSize
	if hi > len(im.data) {
		hi = len(im.data)
	}
	return append([]byte(nil), im.data[lo:hi]...), nil
}

// Digest returns the SHA-256 of the program data; receivers compare it
// against the digest of their reassembled image to check the paper's
// accuracy requirement ("the exact program image is received").
func (im *Image) Digest() [sha256.Size]byte {
	return sha256.Sum256(im.data)
}

// Bytes returns a copy of the raw program data.
func (im *Image) Bytes() []byte {
	return append([]byte(nil), im.data...)
}

// Reassemble rebuilds the image from stored per-packet payloads; get
// must return the payload stored for (seg, pkt) or nil if absent. It
// fails on the first missing or mis-sized packet.
func (im *Image) Reassemble(get func(seg, pkt int) []byte) ([]byte, error) {
	out := make([]byte, 0, len(im.data))
	for seg := 1; seg <= im.Segments(); seg++ {
		n, err := im.PacketsIn(seg)
		if err != nil {
			return nil, err
		}
		for pkt := 0; pkt < n; pkt++ {
			p := get(seg, pkt)
			if p == nil {
				return nil, fmt.Errorf("image: packet (%d,%d) missing", seg, pkt)
			}
			want, err := im.Payload(seg, pkt)
			if err != nil {
				return nil, err
			}
			if len(p) != len(want) {
				return nil, fmt.Errorf("image: packet (%d,%d) is %d bytes, want %d", seg, pkt, len(p), len(want))
			}
			out = append(out, p...)
		}
	}
	return out, nil
}

// Verify reports whether reassembled data matches the image exactly.
func (im *Image) Verify(data []byte) bool {
	return bytes.Equal(im.data, data)
}
