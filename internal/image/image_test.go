package image

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(1, nil); err == nil {
		t.Error("empty data accepted")
	}
	if _, err := New(1, []byte{1}, WithPayloadSize(0)); err == nil {
		t.Error("zero payload accepted")
	}
	if _, err := New(1, []byte{1}, WithPayloadSize(300)); err == nil {
		t.Error("oversize payload accepted")
	}
	if _, err := New(1, []byte{1}, WithSegmentPackets(0)); err == nil {
		t.Error("zero segment packets accepted")
	}
	if _, err := New(1, []byte{1}, WithSegmentPackets(256)); err == nil {
		t.Error("oversize segment packets accepted")
	}
	// 256 segments overflows the 1-byte SegID space.
	big := make([]byte, 256*4*2)
	if _, err := New(1, big, WithPayloadSize(2), WithSegmentPackets(4)); err == nil {
		t.Error("too many segments accepted")
	}
}

func TestGeometryExactSegments(t *testing.T) {
	im, err := Random(1, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if got := im.Segments(); got != 5 {
		t.Fatalf("Segments = %d, want 5", got)
	}
	if got := im.TotalPackets(); got != 5*DefaultSegmentPackets {
		t.Fatalf("TotalPackets = %d", got)
	}
	if got := im.Size(); got != 5*SegmentBytes {
		t.Fatalf("Size = %d, want %d", got, 5*SegmentBytes)
	}
	for seg := 1; seg <= 5; seg++ {
		n, err := im.PacketsIn(seg)
		if err != nil {
			t.Fatal(err)
		}
		if n != DefaultSegmentPackets {
			t.Fatalf("PacketsIn(%d) = %d", seg, n)
		}
	}
}

func TestGeometryPartialTail(t *testing.T) {
	// 3 payloads of 10 bytes + a 4-byte tail, 2 packets per segment:
	// packets = 4, segments = 2, last segment has 2 packets, last
	// packet is 4 bytes.
	data := make([]byte, 34)
	for i := range data {
		data[i] = byte(i)
	}
	im, err := New(1, data, WithPayloadSize(10), WithSegmentPackets(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := im.TotalPackets(); got != 4 {
		t.Fatalf("TotalPackets = %d, want 4", got)
	}
	if got := im.Segments(); got != 2 {
		t.Fatalf("Segments = %d, want 2", got)
	}
	p, err := im.Payload(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p) != 4 {
		t.Fatalf("tail payload = %d bytes, want 4", len(p))
	}
	if !bytes.Equal(p, data[30:]) {
		t.Fatalf("tail payload content mismatch")
	}
}

func TestPayloadBounds(t *testing.T) {
	im, err := Random(1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.PacketsIn(0); err == nil {
		t.Error("PacketsIn(0) accepted")
	}
	if _, err := im.PacketsIn(3); err == nil {
		t.Error("PacketsIn past end accepted")
	}
	if _, err := im.Payload(1, -1); err == nil {
		t.Error("negative packet accepted")
	}
	if _, err := im.Payload(1, DefaultSegmentPackets); err == nil {
		t.Error("packet past end accepted")
	}
	if _, err := im.FlatPayload(-1); err == nil {
		t.Error("negative flat seq accepted")
	}
	if _, err := im.FlatPayload(im.TotalPackets()); err == nil {
		t.Error("flat seq past end accepted")
	}
}

func TestFlatAndSegmentedAgree(t *testing.T) {
	im, err := New(1, bytes.Repeat([]byte{7, 11, 13}, 100), WithPayloadSize(7), WithSegmentPackets(5))
	if err != nil {
		t.Fatal(err)
	}
	for seq := 0; seq < im.TotalPackets(); seq++ {
		seg := seq/im.SegmentPackets() + 1
		pkt := seq % im.SegmentPackets()
		a, err := im.FlatPayload(seq)
		if err != nil {
			t.Fatal(err)
		}
		b, err := im.Payload(seg, pkt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("flat/segmented mismatch at seq %d", seq)
		}
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	im, err := Random(3, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	got, err := im.Reassemble(func(seg, pkt int) []byte {
		p, err := im.Payload(seg, pkt)
		if err != nil {
			return nil
		}
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	if !im.Verify(got) {
		t.Fatal("reassembled image does not verify")
	}
	if im.Digest() != sum256(got) {
		t.Fatal("digest mismatch")
	}
}

func sum256(b []byte) [32]byte {
	im, _ := New(1, b)
	return im.Digest()
}

func TestReassembleDetectsMissingAndCorrupt(t *testing.T) {
	im, err := Random(1, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := im.Reassemble(func(seg, pkt int) []byte {
		if pkt == 60 {
			return nil
		}
		p, _ := im.Payload(seg, pkt)
		return p
	}); err == nil {
		t.Error("missing packet not detected")
	}
	if _, err := im.Reassemble(func(seg, pkt int) []byte {
		p, _ := im.Payload(seg, pkt)
		if pkt == 3 {
			return p[:len(p)-1]
		}
		return p
	}); err == nil {
		t.Error("short packet not detected")
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a, err := Random(1, 2, 1234)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(1, 2, 1234)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatal("same seed produced different images")
	}
	c, err := Random(1, 2, 1235)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical images")
	}
	if _, err := Random(1, 0, 1); err == nil {
		t.Fatal("zero segments accepted")
	}
}

func TestBytesIsACopy(t *testing.T) {
	im, err := New(1, []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b := im.Bytes()
	b[0] = 99
	if im.Bytes()[0] != 1 {
		t.Fatal("Bytes leaked internal state")
	}
}

// Property: for arbitrary data and geometry, concatenating all payloads
// reproduces the data exactly.
func TestQuickPayloadsCoverData(t *testing.T) {
	f := func(data []byte, pRaw, sRaw uint8) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		payload := int(pRaw)%32 + 1
		segPkts := int(sRaw)%16 + 1
		im, err := New(1, data, WithPayloadSize(payload), WithSegmentPackets(segPkts))
		if err != nil {
			// Geometry can overflow the 255-segment limit; that's a
			// valid rejection, not a failure.
			return im == nil
		}
		var out []byte
		for seg := 1; seg <= im.Segments(); seg++ {
			n, err := im.PacketsIn(seg)
			if err != nil {
				return false
			}
			for pkt := 0; pkt < n; pkt++ {
				p, err := im.Payload(seg, pkt)
				if err != nil {
					return false
				}
				out = append(out, p...)
			}
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
