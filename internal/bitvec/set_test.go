package bitvec

import "testing"

func TestSetBasics(t *testing.T) {
	s := NewSet(130)
	if s.Cap() != 130 || s.Count() != 0 {
		t.Fatalf("fresh set: cap %d count %d", s.Cap(), s.Count())
	}
	for _, k := range []int{0, 1, 63, 64, 127, 129} {
		s.Add(k)
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	for _, k := range []int{0, 1, 63, 64, 127, 129} {
		if !s.Contains(k) {
			t.Fatalf("Contains(%d) = false after Add", k)
		}
	}
	if s.Contains(2) || s.Contains(128) {
		t.Fatal("Contains reports absent keys")
	}
	s.Remove(63)
	if s.Contains(63) || s.Count() != 5 {
		t.Fatal("Remove did not delete the key")
	}
	s.Reset()
	if s.Count() != 0 || s.Contains(0) {
		t.Fatal("Reset left keys behind")
	}
}

// Out-of-capacity probes are absent, not panics — the radio probes
// receiver IDs without separate bounds checks.
func TestSetContainsOutOfRange(t *testing.T) {
	s := NewSet(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(1<<20) {
		t.Fatal("out-of-range key reported present")
	}
}

func TestSetAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add out of range did not panic")
		}
	}()
	NewSet(4).Add(4)
}

func TestOrIntersection(t *testing.T) {
	s, a, b := NewSet(200), NewSet(200), NewSet(200)
	s.Add(5) // pre-existing member survives
	for _, k := range []int{1, 70, 140, 199} {
		a.Add(k)
	}
	for _, k := range []int{70, 141, 199} {
		b.Add(k)
	}
	s.OrIntersection(a, b)
	for _, k := range []int{5, 70, 199} {
		if !s.Contains(k) {
			t.Fatalf("missing %d after OrIntersection", k)
		}
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d, want 3", s.Count())
	}
	// Inputs are untouched.
	if a.Count() != 4 || b.Count() != 3 {
		t.Fatal("OrIntersection mutated its inputs")
	}
}

func TestOrIntersectionCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("capacity mismatch did not panic")
		}
	}()
	NewSet(10).OrIntersection(NewSet(10), NewSet(11))
}
