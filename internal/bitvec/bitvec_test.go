package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{-1, 0, MaxBits + 1, 1 << 20} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
}

func TestNewAcceptsValidSizes(t *testing.T) {
	for _, n := range []int{1, 7, 8, 63, 64, 65, 127, MaxBits} {
		v, err := New(n)
		if err != nil {
			t.Fatalf("New(%d): %v", n, err)
		}
		if v.Len() != n {
			t.Errorf("Len = %d, want %d", v.Len(), n)
		}
		if v.Any() {
			t.Errorf("New(%d) has set bits", n)
		}
	}
}

func TestMustNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) did not panic")
		}
	}()
	MustNew(0)
}

func TestSetGetClear(t *testing.T) {
	v := MustNew(100)
	for _, i := range []int{0, 1, 63, 64, 65, 99} {
		if v.Get(i) {
			t.Fatalf("bit %d set before Set", i)
		}
		v.Set(i)
		if !v.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
		v.Clear(i)
		if v.Get(i) {
			t.Fatalf("bit %d set after Clear", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	v := MustNew(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestAllSetAndCount(t *testing.T) {
	for _, n := range []int{1, 8, 64, 100, 128} {
		v, err := AllSet(n)
		if err != nil {
			t.Fatalf("AllSet(%d): %v", n, err)
		}
		if got := v.Count(); got != n {
			t.Errorf("AllSet(%d).Count = %d", n, got)
		}
		if v.None() {
			t.Errorf("AllSet(%d).None = true", n)
		}
		v.ClearAll()
		if !v.None() || v.Count() != 0 {
			t.Errorf("ClearAll left bits set for n=%d", n)
		}
	}
}

func TestSetAllDoesNotOverflowTail(t *testing.T) {
	// SetAll on a 100-bit vector must not set the 28 padding bits; if it
	// did, Count would exceed Len and Bytes would have padding garbage.
	v := MustNew(100)
	v.SetAll()
	if got := v.Count(); got != 100 {
		t.Fatalf("Count after SetAll = %d, want 100", got)
	}
	b := v.Bytes()
	if b[len(b)-1] != 0x0f { // bits 96..99 only
		t.Fatalf("final byte = %#x, want 0x0f", b[len(b)-1])
	}
}

func TestFirstAndNextAfter(t *testing.T) {
	v := MustNew(128)
	if v.First() != -1 {
		t.Fatalf("First on empty = %d", v.First())
	}
	for _, i := range []int{3, 64, 127} {
		v.Set(i)
	}
	if got := v.First(); got != 3 {
		t.Fatalf("First = %d, want 3", got)
	}
	if got := v.NextAfter(3); got != 64 {
		t.Fatalf("NextAfter(3) = %d, want 64", got)
	}
	if got := v.NextAfter(64); got != 127 {
		t.Fatalf("NextAfter(64) = %d, want 127", got)
	}
	if got := v.NextAfter(127); got != -1 {
		t.Fatalf("NextAfter(127) = %d, want -1", got)
	}
	if got := v.NextAfter(200); got != -1 {
		t.Fatalf("NextAfter(200) = %d, want -1", got)
	}
}

func TestIndicesRoundTrip(t *testing.T) {
	v := MustNew(90)
	want := []int{0, 17, 33, 64, 89}
	for _, i := range want {
		v.Set(i)
	}
	got := v.Indices()
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestOrIsUnion(t *testing.T) {
	a := MustNew(70)
	b := MustNew(70)
	a.Set(1)
	a.Set(65)
	b.Set(2)
	b.Set(65)
	if err := a.Or(b); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 2, 65} {
		if !a.Get(i) {
			t.Errorf("bit %d not set after Or", i)
		}
	}
	if a.Count() != 3 {
		t.Errorf("Count = %d, want 3", a.Count())
	}
}

func TestOrLengthMismatch(t *testing.T) {
	a := MustNew(10)
	b := MustNew(11)
	if err := a.Or(b); err == nil {
		t.Fatal("Or with mismatched lengths succeeded")
	}
	if err := a.Or(nil); err == nil {
		t.Fatal("Or(nil) succeeded")
	}
	if err := a.AndNot(b); err == nil {
		t.Fatal("AndNot with mismatched lengths succeeded")
	}
}

func TestAndNotRemoves(t *testing.T) {
	a, _ := AllSet(50)
	b := MustNew(50)
	b.Set(10)
	b.Set(49)
	if err := a.AndNot(b); err != nil {
		t.Fatal(err)
	}
	if a.Get(10) || a.Get(49) {
		t.Fatal("AndNot left removed bits set")
	}
	if a.Count() != 48 {
		t.Fatalf("Count = %d, want 48", a.Count())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := MustNew(64)
	a.Set(5)
	b := a.Clone()
	b.Set(6)
	if a.Get(6) {
		t.Fatal("mutating clone changed original")
	}
	if !b.Get(5) {
		t.Fatal("clone missing original bit")
	}
}

func TestEqual(t *testing.T) {
	a := MustNew(65)
	b := MustNew(65)
	if !a.Equal(b) {
		t.Fatal("fresh vectors unequal")
	}
	a.Set(64)
	if a.Equal(b) {
		t.Fatal("different vectors equal")
	}
	b.Set(64)
	if !a.Equal(b) {
		t.Fatal("same vectors unequal")
	}
	if a.Equal(MustNew(64)) {
		t.Fatal("different lengths equal")
	}
	if a.Equal(nil) {
		t.Fatal("Equal(nil) = true")
	}
}

func TestBytesDecodeRoundTripFixed(t *testing.T) {
	v := MustNew(12)
	v.Set(0)
	v.Set(8)
	v.Set(11)
	b := v.Bytes()
	if len(b) != 2 {
		t.Fatalf("len(Bytes) = %d, want 2", len(b))
	}
	got, err := Decode(12, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("decode mismatch: %v vs %v", got, v)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	if _, err := Decode(12, []byte{1}); err == nil {
		t.Fatal("short buffer accepted")
	}
	if _, err := Decode(12, []byte{1, 2, 3}); err == nil {
		t.Fatal("long buffer accepted")
	}
	// Padding bits above bit 11 must be zero.
	if _, err := Decode(12, []byte{0, 0xf0}); err == nil {
		t.Fatal("nonzero padding accepted")
	}
	if _, err := Decode(0, nil); err == nil {
		t.Fatal("zero-size decode accepted")
	}
}

func TestStringSummarizes(t *testing.T) {
	v := MustNew(16)
	v.Set(2)
	if s := v.String(); s == "" {
		t.Fatal("empty String")
	}
	// Cosmetic truncation path.
	w, _ := AllSet(128)
	if s := w.String(); s == "" {
		t.Fatal("empty String for full vector")
	}
}

// Property: Bytes/Decode round-trips for arbitrary bit patterns.
func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%MaxBits + 1
		rng := rand.New(rand.NewSource(seed))
		v := MustNew(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		got, err := Decode(n, v.Bytes())
		return err == nil && got.Equal(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count equals the number of indices, and every index Get()s.
func TestQuickCountMatchesIndices(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%MaxBits + 1
		rng := rand.New(rand.NewSource(seed))
		v := MustNew(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				v.Set(i)
			}
		}
		idx := v.Indices()
		if len(idx) != v.Count() {
			return false
		}
		for _, i := range idx {
			if !v.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a.Or(b) yields exactly the union; AndNot undoes it where b set.
func TestQuickOrUnionSemantics(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%MaxBits + 1
		rng := rand.New(rand.NewSource(seed))
		a, b := MustNew(n), MustNew(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				a.Set(i)
			}
			if rng.Intn(2) == 1 {
				b.Set(i)
			}
		}
		orig := a.Clone()
		if a.Or(b) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != (orig.Get(i) || b.Get(i)) {
				return false
			}
		}
		if a.AndNot(b) != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if a.Get(i) != (orig.Get(i) && !b.Get(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	v := MustNew(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Set(i % 128)
		_ = v.Count()
	}
}
