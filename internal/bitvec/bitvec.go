// Package bitvec provides the fixed-capacity bit vectors MNP uses to
// track per-segment packet state: the receiver's MissingVector (bits
// set for packets not yet received) and the sender's ForwardVector
// (bits set for packets some requester is missing).
//
// MNP restricts a segment to at most 128 packets so that a vector is at
// most 16 bytes and fits into a single radio packet alongside the
// request header.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxBits is the largest vector capacity MNP uses. A 128-bit vector is
// 16 bytes, small enough to ride inside one download-request packet.
const MaxBits = 128

// Vector is a fixed-capacity bit vector. The zero value is unusable;
// construct with New or Decode.
type Vector struct {
	n     int
	words []uint64
}

// New returns a vector of n bits, all clear. n must be in (0, MaxBits].
func New(n int) (*Vector, error) {
	if n <= 0 || n > MaxBits {
		return nil, fmt.Errorf("bitvec: size %d out of range (0, %d]", n, MaxBits)
	}
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}, nil
}

// MustNew is New for sizes known valid at compile time; it panics on a
// bad size.
func MustNew(n int) *Vector {
	v, err := New(n)
	if err != nil {
		panic(err)
	}
	return v
}

// AllSet returns a vector of n bits, all set — the initial
// MissingVector state, where every packet of the segment is missing.
func AllSet(n int) (*Vector, error) {
	v, err := New(n)
	if err != nil {
		return nil, err
	}
	v.SetAll()
	return v, nil
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/64] |= 1 << (uint(i) % 64)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/64] &^= 1 << (uint(i) % 64)
}

// Get reports whether bit i is set.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/64]&(1<<(uint(i)%64)) != 0
}

// SetAll sets every bit.
func (v *Vector) SetAll() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

// ClearAll clears every bit.
func (v *Vector) ClearAll() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set. For a MissingVector this means
// the segment is complete.
func (v *Vector) None() bool { return !v.Any() }

// First returns the index of the lowest set bit, or -1 if none. Senders
// walk the ForwardVector with First/NextAfter to transmit requested
// packets in order.
func (v *Vector) First() int { return v.NextAfter(-1) }

// NextAfter returns the index of the lowest set bit strictly greater
// than i, or -1 if none. Pass -1 to start from the beginning.
func (v *Vector) NextAfter(i int) int {
	start := i + 1
	if start >= v.n {
		return -1
	}
	wi := start / 64
	w := v.words[wi] >> (uint(start) % 64)
	if w != 0 {
		return start + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*64 + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// Or merges other into v (v |= other). This is how an advertising node
// folds a requester's MissingVector into its ForwardVector. The vectors
// must have the same length.
func (v *Vector) Or(other *Vector) error {
	if other == nil || other.n != v.n {
		return fmt.Errorf("bitvec: length mismatch in Or")
	}
	for i := range v.words {
		v.words[i] |= other.words[i]
	}
	return nil
}

// AndNot clears in v every bit set in other (v &^= other).
func (v *Vector) AndNot(other *Vector) error {
	if other == nil || other.n != v.n {
		return fmt.Errorf("bitvec: length mismatch in AndNot")
	}
	for i := range v.words {
		v.words[i] &^= other.words[i]
	}
	return nil
}

// Equal reports whether v and other have the same length and bits.
func (v *Vector) Equal(other *Vector) bool {
	if other == nil || other.n != v.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	w := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Indices returns the indices of all set bits in ascending order.
func (v *Vector) Indices() []int {
	out := make([]int, 0, v.Count())
	for i := v.First(); i >= 0; i = v.NextAfter(i) {
		out = append(out, i)
	}
	return out
}

// Bytes serializes the vector into the wire form carried by download
// requests: ceil(n/8) bytes, little-endian bit order within each byte.
func (v *Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// Decode reconstructs an n-bit vector from its wire form. Extra bits in
// the final byte must be zero.
func Decode(n int, data []byte) (*Vector, error) {
	v, err := New(n)
	if err != nil {
		return nil, err
	}
	want := (n + 7) / 8
	if len(data) != want {
		return nil, fmt.Errorf("bitvec: decode %d bits needs %d bytes, got %d", n, want, len(data))
	}
	for i := 0; i < n; i++ {
		if data[i/8]&(1<<(uint(i)%8)) != 0 {
			v.Set(i)
		}
	}
	if tail := n % 8; tail != 0 {
		if data[len(data)-1]>>uint(tail) != 0 {
			return nil, fmt.Errorf("bitvec: nonzero padding bits in final byte")
		}
	}
	return v, nil
}

// DecodeReuse is Decode into an existing vector: when v is non-nil and
// its word storage already spans n bits, the storage is reused and v
// itself is returned; otherwise a fresh vector is allocated exactly as
// Decode does. The radio's pooled frame decoding uses it so steady-state
// deliveries of vector-carrying messages stop allocating.
func DecodeReuse(v *Vector, n int, data []byte) (*Vector, error) {
	if v == nil || n <= 0 || n > MaxBits || cap(v.words) < (n+63)/64 {
		return Decode(n, data)
	}
	want := (n + 7) / 8
	if len(data) != want {
		return nil, fmt.Errorf("bitvec: decode %d bits needs %d bytes, got %d", n, want, len(data))
	}
	if tail := n % 8; tail != 0 && data[len(data)-1]>>uint(tail) != 0 {
		return nil, fmt.Errorf("bitvec: nonzero padding bits in final byte")
	}
	v.n = n
	v.words = v.words[:(n+63)/64]
	for i := range v.words {
		v.words[i] = 0
	}
	for i := 0; i < n; i++ {
		if data[i/8]&(1<<(uint(i)%8)) != 0 {
			v.Set(i)
		}
	}
	return v, nil
}

// String renders the vector as a compact summary for logs and tests.
func (v *Vector) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bitvec(%d/%d:", v.Count(), v.n)
	idx := v.Indices()
	const maxShown = 8
	for i, x := range idx {
		if i == maxShown {
			b.WriteString("…")
			break
		}
		fmt.Fprintf(&b, " %d", x)
	}
	b.WriteString(")")
	return b.String()
}

// Set is a fixed-capacity bit set over dense small-integer keys. Unlike
// Vector it has no MaxBits cap and no wire format: it exists for the
// simulator's hot paths (per-receiver audibility and collision marking
// in internal/radio), where membership tests must be O(1) and a set
// must be reusable without reallocation.
type Set struct {
	n     int
	words []uint64
}

// NewSet returns a set over keys [0, n).
func NewSet(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative set capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Cap returns the key-space size the set was built for.
func (s *Set) Cap() int { return s.n }

// Add inserts key i.
func (s *Set) Add(i int) {
	s.checkKey(i)
	s.words[i/64] |= 1 << (uint(i) % 64)
}

// Remove deletes key i.
func (s *Set) Remove(i int) {
	s.checkKey(i)
	s.words[i/64] &^= 1 << (uint(i) % 64)
}

// Contains reports whether key i is in the set. Keys outside the
// capacity are simply absent, so callers can probe without bounds
// checks of their own.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Reset empties the set without releasing its storage.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Count returns the number of keys in the set.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// OrIntersection folds a ∩ b into s (s |= a ∩ b) one word at a time —
// the radio's collision marking, where every receiver audible to two
// overlapping transmitters loses both frames. All three sets must share
// a capacity.
func (s *Set) OrIntersection(a, b *Set) {
	if a.n != s.n || b.n != s.n {
		panic(fmt.Sprintf("bitvec: OrIntersection capacity mismatch (%d, %d, %d)", s.n, a.n, b.n))
	}
	for i := range s.words {
		s.words[i] |= a.words[i] & b.words[i]
	}
}

// ResetCap empties the set and re-dimensions it to the key space
// [0, n), reusing the existing word storage when it is large enough.
// The radio's pooled collision sets use it: each transmission's set is
// sized to that frame's audible-neighbor count, so capacity follows the
// local node degree instead of the network size.
func (s *Set) ResetCap(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative set capacity %d", n))
	}
	words := (n + 63) / 64
	if cap(s.words) < words {
		s.words = make([]uint64, words)
	} else {
		s.words = s.words[:words]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.n = n
}

func (s *Set) checkKey(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitvec: key %d out of range [0,%d)", i, s.n))
	}
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

func (v *Vector) maskTail() {
	if tail := v.n % 64; tail != 0 {
		v.words[len(v.words)-1] &= (1 << uint(tail)) - 1
	}
}
