package mnp

// The regeneration harness: one benchmark per table and figure of the
// paper's evaluation, plus the section-5 Deluge comparison and the
// ablations from DESIGN.md. Each benchmark runs the corresponding
// experiment spec end to end and reports paper-shaped metrics as
// custom benchmark outputs. Regenerate everything with
//
//	go test -bench=. -benchmem
//
// and the per-figure reports with cmd/mnpexp.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mnp/internal/experiment"
	"mnp/internal/metrics"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

// benchSpec runs one experiment spec per benchmark iteration.
func benchSpec(b *testing.B, id string) {
	b.Helper()
	spec, ok := findSpec(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := spec.Run(42 + int64(i))
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && !strings.Contains(out, "\n") {
			b.Fatalf("%s produced an empty report", id)
		}
		b.SetBytes(int64(len(out)))
	}
}

func findSpec(id string) (Spec, bool) {
	for _, s := range Experiments() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// BenchmarkTable1EnergyCosts regenerates Table 1 (per-operation energy
// costs of Mica motes).
func BenchmarkTable1EnergyCosts(b *testing.B) { benchSpec(b, "T1") }

// BenchmarkFig5Indoor regenerates Figure 5: the indoor 3x5 testbed at
// power levels 4 and 3 — parent maps, sender order, completion time.
func BenchmarkFig5Indoor(b *testing.B) { benchSpec(b, "F5") }

// BenchmarkFig6Outdoor5x5 regenerates Figure 6: the outdoor 5x5 grid
// at full and reduced power.
func BenchmarkFig6Outdoor5x5(b *testing.B) { benchSpec(b, "F6") }

// BenchmarkFig7Outdoor2x10 regenerates Figure 7: the outdoor 2x10
// grid, the paper's long-multihop deployment.
func BenchmarkFig7Outdoor2x10(b *testing.B) { benchSpec(b, "F7") }

// BenchmarkFig8ActiveRadioTime regenerates Figure 8: per-node active
// radio time in a 20x20 network disseminating 5 segments.
func BenchmarkFig8ActiveRadioTime(b *testing.B) { benchSpec(b, "F8") }

// BenchmarkFig9ARTNoInitialIdle regenerates Figure 9: the same
// distribution with the initial idle-listening period removed.
func BenchmarkFig9ARTNoInitialIdle(b *testing.B) { benchSpec(b, "F9") }

// BenchmarkFig10ProgramSizeSweep regenerates Figure 10: completion
// time and active radio time across program sizes of 1..10 segments.
func BenchmarkFig10ProgramSizeSweep(b *testing.B) { benchSpec(b, "F10") }

// BenchmarkFig11TxRxDistribution regenerates Figure 11: transmission
// and reception distributions across the 20x20 grid.
func BenchmarkFig11TxRxDistribution(b *testing.B) { benchSpec(b, "F11") }

// BenchmarkFig12MessageTimeline regenerates Figure 12: advertisements,
// requests and data messages per one-minute window.
func BenchmarkFig12MessageTimeline(b *testing.B) { benchSpec(b, "F12") }

// BenchmarkFig13PropagationProgress regenerates Figure 13: the
// propagation wavefront of a single segment, including the
// diagonal-vs-edge uniformity check.
func BenchmarkFig13PropagationProgress(b *testing.B) { benchSpec(b, "F13") }

// BenchmarkDelugeComparison regenerates the section-5 comparison:
// MNP vs Deluge on the same 20x20 workload.
func BenchmarkDelugeComparison(b *testing.B) { benchSpec(b, "EDEL") }

// BenchmarkAblationNoSenderSelection measures dissemination with the
// ReqCtr competition disabled (design ablation A1).
func BenchmarkAblationNoSenderSelection(b *testing.B) { benchSpec(b, "A1") }

// BenchmarkAblationNoSleep measures dissemination with radio sleeping
// disabled (design ablation A2).
func BenchmarkAblationNoSleep(b *testing.B) { benchSpec(b, "A2") }

// BenchmarkAblationQueryUpdate measures the effect of the optional
// query/update repair phase on a lossy network (design ablation A3).
func BenchmarkAblationQueryUpdate(b *testing.B) { benchSpec(b, "A3") }

// BenchmarkBatteryAware measures the section-6 battery-aware
// advertisement-power extension (design ablation A4).
func BenchmarkBatteryAware(b *testing.B) { benchSpec(b, "A4") }

// BenchmarkIdleDutyCycle measures the paper's S-MAC-style suggestion
// for eliminating initial idle listening (design extension A5).
func BenchmarkIdleDutyCycle(b *testing.B) { benchSpec(b, "A5") }

// BenchmarkScaleCentralBase validates the section-6 scaling claim: a
// 4x larger network with the base station at its center completes in
// about the same time (design extension A6).
func BenchmarkScaleCentralBase(b *testing.B) { benchSpec(b, "A6") }

// --- Substrate micro-benchmarks ---
//
// The figure benchmarks above measure whole experiments; the two below
// isolate the simulation substrate's hot paths: Medium.Transmit (the
// per-frame channel work) and Kernel scheduling (the per-event queue
// work). They feed BENCH_sim.json via `make bench`.

// BenchmarkMediumTransmit measures one batch of concurrent frame
// transmissions plus their deliveries on a 400-node (20x20) grid, for
// varying numbers of simultaneously active transmitters.
func BenchmarkMediumTransmit(b *testing.B) {
	for _, active := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("active=%d", active), func(b *testing.B) {
			k := sim.New(1)
			layout, err := topology.Grid(20, 20, 10)
			if err != nil {
				b.Fatal(err)
			}
			m, err := radio.NewMedium(k, layout, radio.DefaultParams(), 2)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < layout.N(); i++ {
				id := packet.NodeID(i)
				if err := m.Register(id, func(packet.Packet, radio.RxMeta) {}); err != nil {
					b.Fatal(err)
				}
				m.SetRadio(id, true)
			}
			// Sources spread across the grid (37 is coprime to 400).
			pkts := make([]*packet.Advertise, active)
			srcs := make([]packet.NodeID, active)
			for j := range srcs {
				srcs[j] = packet.NodeID(j * 37 % layout.N())
				pkts[j] = &packet.Advertise{Src: srcs[j], ProgramID: 1, ProgramSegments: 5, SegID: 1, SegNominal: 128, TotalPackets: 640}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, src := range srcs {
					if _, err := m.Transmit(src, pkts[j], radio.PowerSim); err != nil {
						b.Fatal(err)
					}
				}
				k.Run(time.Hour) // drain the finish events
			}
		})
	}
}

// BenchmarkGeometryBuild measures sparse radio-geometry construction —
// the simulator's startup cost — across three decades of deployment
// size up to the 250k-node scaling target. The curve should be
// near-linear in n (the spatial index is two O(n) passes), and the
// geo-B metric reports the geometry's resident bytes so benchjson can
// record the memory series alongside the timings: roughly 24 B/node
// versus the 8n² B the dense distance matrix would need (500 GB at
// 250k nodes).
func BenchmarkGeometryBuild(b *testing.B) {
	for _, dims := range []struct{ rows, cols int }{
		{25, 40},   // 1000
		{100, 100}, // 10k
		{250, 400}, // 100k
		{500, 500}, // 250k
	} {
		n := dims.rows * dims.cols
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			layout, err := topology.Grid(dims.rows, dims.cols, 10)
			if err != nil {
				b.Fatal(err)
			}
			params := radio.DefaultParams()
			b.ReportAllocs()
			b.ResetTimer()
			var fp uint64
			for i := 0; i < b.N; i++ {
				geo, err := radio.NewGeometry(layout, params, 2)
				if err != nil {
					b.Fatal(err)
				}
				fp = geo.Footprint()
			}
			b.ReportMetric(float64(fp), "geo-B")
		})
	}
}

// BenchmarkEngineGrid measures the sharded lockstep engine against the
// sequential kernel: one full 60x60-grid (3600-node) dissemination per
// iteration at 1, 2, 4, and 8 spatial shards. The shards=1 case is the
// classic single-kernel path; higher counts exercise partitioning,
// per-window advancement, and barrier ghost exchange. The window phase
// parallelizes across cores (Workers=0 auto-selects); on a single-core
// host the series instead bounds the lockstep overhead — sharded runs
// should stay within a few percent of sequential despite the ~300k
// barrier exchanges a run this size performs. Feeds BENCH_sim.json via
// `make bench`.
func BenchmarkEngineGrid(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Setup{
					Name: "engine-grid", Rows: 60, Cols: 60, ImagePackets: 64,
					Seed: 42 + int64(i), Shards: shards,
					Limit: 12 * time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("shards=%d seed=%d: dissemination incomplete", shards, 42+int64(i))
				}
			}
		})
	}
	// Tiled series: the same 3600-node dissemination on explicit 2D
	// tile grids, all at four executors, with and without the adaptive
	// repartitioner. Each run reports the mean per-window load
	// imbalance (max/mean across executors, 1.0 is perfect) alongside
	// the timing, so BENCH_sim.json records the balance curve the
	// repartitioner is supposed to flatten. `make bench-smoke` runs
	// just this series, one iteration per config.
	for _, tc := range []struct {
		name       string
		rows, cols int
		repart     bool
		mobile     bool
	}{
		{"tiles=2x2", 2, 2, false, false},
		{"tiles=4x4", 4, 4, false, false},
		{"tiles=4x4-repart", 4, 4, true, false},
		// The mobile cell prices barrier-quantized position updates: a
		// random-waypoint walk moves every node through the run, so each
		// window pays index maintenance plus link-row invalidation on top
		// of the static baseline above it.
		{"tiles=4x4-mobile", 4, 4, false, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			var imbalance float64
			for i := 0; i < b.N; i++ {
				setup := experiment.Setup{
					Name: "engine-grid-tiled", Rows: 60, Cols: 60, ImagePackets: 64,
					Seed: 42 + int64(i), Shards: 4,
					TileRows: tc.rows, TileCols: tc.cols,
					Repartition: tc.repart,
					Limit:       12 * time.Hour,
				}
				if tc.mobile {
					setup.Mobility = func(l *topology.Layout, seed int64) (topology.Mobility, error) {
						return topology.NewWaypoint(l, topology.WaypointConfig{
							SpeedMin: 1, SpeedMax: 3, Pause: 10 * time.Second, Seed: seed,
						})
					}
					setup.MobilityEvery = 5 * time.Second
				}
				res, err := experiment.Run(setup)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("%s seed=%d: dissemination incomplete", tc.name, 42+int64(i))
				}
				imbalance = metrics.SummarizeLoads(res.LoadMatrix()).Mean
			}
			b.ReportMetric(imbalance, "imbalance")
		})
	}
	// Optimistic series: a 900-node 30x30 dissemination on a 2x2 tile
	// grid with speculative window execution, swept across worker
	// counts — the recorded multi-core scaling curve for optimistic
	// mode, with a conservative cell at the same worker count as the
	// speedup baseline. The workload is deliberately smaller than the
	// series above: a dense single-image dissemination rolls back
	// often, so a speculative cell pays per-round checkpoint capture
	// on most of its ~24k rounds and runs minutes where conservative
	// lockstep runs seconds (EXPERIMENTS.md records the measured
	// ratio). Alongside the timing each speculative cell reports
	// rollback-rate (fraction of speculated windows rolled back) and
	// spec-depth (mean windows committed per speculative round), so
	// BENCH_sim.json records how often the ghost-free-lookahead gamble
	// pays and how deep it runs. `make bench-smoke` includes this
	// series, one iteration per config.
	for _, oc := range []struct {
		name       string
		workers    int
		optimistic bool
	}{
		{"optimistic=off-w4", 4, false},
		{"optimistic=w1", 1, true},
		{"optimistic=w2", 2, true},
		{"optimistic=w4", 4, true},
	} {
		b.Run(oc.name, func(b *testing.B) {
			b.ReportAllocs()
			var rollbackRate, specDepth float64
			for i := 0; i < b.N; i++ {
				res, err := experiment.Run(experiment.Setup{
					Name: "engine-grid-optimistic", Rows: 30, Cols: 30, ImagePackets: 64,
					Seed: 42 + int64(i), Shards: 4, Workers: oc.workers,
					TileRows: 2, TileCols: 2,
					Optimistic: oc.optimistic,
					Limit:      12 * time.Hour,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatalf("%s seed=%d: dissemination incomplete", oc.name, 42+int64(i))
				}
				if oc.optimistic {
					st := res.Engine.Stats()
					if st.SpecWindows > 0 {
						rollbackRate = float64(st.SpecRolledBack) / float64(st.SpecWindows)
					}
					if st.SpecRounds > 0 {
						specDepth = float64(st.SpecCommitted) / float64(st.SpecRounds)
					}
				}
			}
			if oc.optimistic {
				b.ReportMetric(rollbackRate, "rollback-rate")
				b.ReportMetric(specDepth, "spec-depth")
			}
		})
	}
}

// BenchmarkKernelSchedule measures the kernel's schedule/fire and
// schedule/cancel cycles — the per-event cost every simulated timer and
// frame pays.
func BenchmarkKernelSchedule(b *testing.B) {
	b.Run("fire", func(b *testing.B) {
		k := sim.New(1)
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			k.MustSchedule(time.Microsecond, fn)
			k.Step()
		}
	})
	b.Run("cancel", func(b *testing.B) {
		k := sim.New(1)
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			t := k.MustSchedule(time.Microsecond, fn)
			t.Cancel()
			k.Step() // reaps the cancelled event
		}
	})
}
