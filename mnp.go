// Package mnp is a faithful Go reproduction of "MNP: Multihop Network
// Reprogramming Service for Sensor Networks" (Kulkarni & Wang,
// ICDCS 2005): the MNP code-dissemination protocol itself — greedy
// ReqCtr-based sender selection, segment pipelining, bitmap loss
// recovery, aggressive radio sleeping — together with the substrate it
// was evaluated on (a TOSSIM-style discrete-event mote simulator with
// a Mica-2 radio model and Table-1 energy accounting) and the
// baselines it was compared against (Deluge, MOAP, XNP).
//
// The package is a thin facade: Simulate runs one deployment,
// Experiments/RunExperiment reproduce the paper's tables and figures.
// Example programs live under examples/; the regeneration benchmarks
// (one per table/figure) live in bench_test.go.
package mnp

import (
	"fmt"

	"mnp/internal/experiment"
	"mnp/internal/radio"
)

// Re-exported experiment types: Setup describes a deployment, Result a
// finished run, Spec a paper artifact.
type (
	// Setup configures a simulated deployment (grid size, program
	// size, protocol, power level, seed).
	Setup = experiment.Setup
	// Result is a completed run with its metrics collector.
	Result = experiment.Result
	// Spec reproduces one of the paper's tables or figures.
	Spec = experiment.Spec
	// ProtocolKind selects the dissemination protocol.
	ProtocolKind = experiment.ProtocolKind
)

// Protocols runnable by Simulate.
const (
	ProtocolMNP    = experiment.ProtocolMNP
	ProtocolDeluge = experiment.ProtocolDeluge
	ProtocolMOAP   = experiment.ProtocolMOAP
	ProtocolXNP    = experiment.ProtocolXNP
	ProtocolRLNC   = experiment.ProtocolRLNC
)

// TinyOS power levels with configured ranges.
const (
	PowerWeak       = radio.PowerWeak
	PowerIndoorLow  = radio.PowerIndoorLow
	PowerIndoorHigh = radio.PowerIndoorHigh
	PowerSim        = radio.PowerSim
	PowerOutdoorLow = radio.PowerOutdoorLow
	PowerFull       = radio.PowerFull
)

// Simulate runs one deployment to completion (or its time limit).
func Simulate(s Setup) (*Result, error) {
	return experiment.Run(s)
}

// Build constructs a deployment without starting it, for callers that
// want to schedule fault injection or extra instrumentation first:
// follow with res.Network.Start() and drive res.Kernel.
func Build(s Setup) (*Result, error) {
	return experiment.Build(s)
}

// Experiments lists the paper's tables and figures in order.
func Experiments() []Spec {
	return experiment.AllSpecs()
}

// RunExperiment reproduces one table or figure by ID (T1, F5..F13,
// EDEL, A1..A4) and returns its rendered report.
func RunExperiment(id string, seed int64) (string, error) {
	spec, ok := experiment.ByID(id)
	if !ok {
		return "", fmt.Errorf("mnp: unknown experiment %q", id)
	}
	return spec.Run(seed)
}
