package mnp

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"testing"
	"time"

	"mnp/internal/experiment"
	"mnp/internal/faults"
	"mnp/internal/invariant"
	"mnp/internal/scenario"
	"mnp/internal/topology"
)

// Golden SHA-256 digests of the Figure 8 report, captured from the seed
// revision of the simulator (before the performance work on the radio,
// kernel, and codec paths). The optimizations are required to be
// behavior-preserving down to the byte: same RNG draw order, same
// floating-point values, same report text. If one of these hashes
// changes, a supposedly transparent optimization altered simulation
// behavior.
var goldenF8 = map[int64]string{
	42: "d126b3620a7dac127751c6766b620551c160832377662105551fdc68654c57c2",
	7:  "898a48d7d86d2adbca0895a0e3a46239fd69621f01e43000fc5275c7ce219b1f",
}

func TestF8ReportMatchesSeedRevision(t *testing.T) {
	if testing.Short() {
		t.Skip("full F8 simulation in -short mode")
	}
	for seed, want := range goldenF8 {
		out, err := RunExperiment("F8", seed)
		if err != nil {
			t.Fatal(err)
		}
		got := hex.EncodeToString(sumOf(out))
		if got != want {
			t.Errorf("F8 seed %d report hash = %s, want %s (simulation behavior changed)", seed, got, want)
		}
	}
}

// RunSeeds must produce byte-identical reports to serial runs, in seed
// order, regardless of worker count — the parallel fan-out may not
// perturb any individual simulation.
func TestRunSeedsDeterministicMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("full F8 simulations in -short mode")
	}
	spec, ok := experiment.ByID("F8")
	if !ok {
		t.Fatal("F8 spec missing")
	}
	seeds := []int64{42, 7}
	runs := RunSeeds(spec, seeds, 2)
	if len(runs) != len(seeds) {
		t.Fatalf("got %d runs, want %d", len(runs), len(seeds))
	}
	for i, r := range runs {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Seed != seeds[i] {
			t.Fatalf("run %d has seed %d, want %d (merge order broken)", i, r.Seed, seeds[i])
		}
		want := goldenF8[r.Seed]
		if got := hex.EncodeToString(sumOf(r.Report)); got != want {
			t.Errorf("RunSeeds seed %d report hash = %s, want %s", r.Seed, got, want)
		}
	}
}

func TestRunSeedsEdgeCases(t *testing.T) {
	spec, _ := experiment.ByID("T1")
	if got := RunSeeds(spec, nil, 4); len(got) != 0 {
		t.Fatalf("RunSeeds(nil seeds) returned %d runs", len(got))
	}
	// workers <= 0 and workers > len(seeds) both work.
	for _, workers := range []int{0, 8} {
		runs := RunSeeds(spec, []int64{1, 2, 3}, workers)
		for i, r := range runs {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if r.Seed != []int64{1, 2, 3}[i] {
				t.Fatalf("workers=%d: run %d out of order", workers, i)
			}
		}
	}
}

// goldenChaos pins the full per-node outcome of a crash+reboot run at
// seed 42: fault plans draw from their own seeded RNG, so a faulted
// run must be exactly as reproducible as a clean one. If this hash
// changes, either the fault-injection layer started consuming shared
// randomness or a behavior-preserving change wasn't.
const goldenChaos = "2511afdd862ab59f133526dcb034d110cabb917b5eb0ad88ec1affe86e7f192a"

func TestChaosRunMatchesGolden(t *testing.T) {
	res, err := experiment.Run(experiment.Setup{
		Name: "chaos-golden", Rows: 4, Cols: 4, ImagePackets: 128, Seed: 42,
		Limit: 6 * time.Hour,
		Faults: &faults.Plan{Events: []faults.Event{
			faults.CrashReboot(15, 30*time.Second, 10*time.Second),
			faults.EEPROMErrors(faults.Wildcard, 0.02, 0, 0),
		}},
		Invariants: &invariant.Config{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v at=%v\n", res.Completed, res.CompletionTime)
	for _, n := range res.Network.Nodes {
		fmt.Fprintf(&b, "%v dead=%v completed=%v at=%v slots=%d faults=%d\n",
			n.ID(), n.Dead(), n.Completed(), n.CompletedAt(),
			n.EEPROM().Slots(), n.EEPROM().FaultCount())
	}
	if got := hex.EncodeToString(sumOf(b.String())); got != goldenChaos {
		t.Errorf("chaos run report hash = %s, want %s (fault injection is no longer deterministic)\n%s",
			got, goldenChaos, b.String())
	}
}

// TestScenarioCompiledChaosMatchesGolden runs the chaos-golden
// deployment compiled from a declarative scenario document instead of
// a hand-written Setup. The resulting simulation must be byte-for-byte
// the run pinned by goldenChaos: the scenario layer is configuration
// plumbing and may not perturb a single RNG draw.
func TestScenarioCompiledChaosMatchesGolden(t *testing.T) {
	doc := `
version = 1
name = "chaos-golden"
faults = "reboot:15@30s+10s; eeprom:*:0.02"
[topology]
kind = "grid"
rows = 4
cols = 4
[run]
seed = 42
image_packets = 128
limit = "6h"
shards = 1
[invariants]
enabled = true
`
	sc, err := scenario.Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiment.Run(setup)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.VerifyInvariants(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "completed=%v at=%v\n", res.Completed, res.CompletionTime)
	for _, n := range res.Network.Nodes {
		fmt.Fprintf(&b, "%v dead=%v completed=%v at=%v slots=%d faults=%d\n",
			n.ID(), n.Dead(), n.Completed(), n.CompletedAt(),
			n.EEPROM().Slots(), n.EEPROM().FaultCount())
	}
	if got := hex.EncodeToString(sumOf(b.String())); got != goldenChaos {
		t.Errorf("scenario-compiled chaos run hash = %s, want %s (scenario compilation perturbs the simulation)\n%s",
			got, goldenChaos, b.String())
	}
}

// goldenSharded pins the full per-node outcome of a sharded run at a
// fixed (seed, shard count): sharded execution is a deterministic pure
// function of that pair, independent of worker count, host CPU count,
// and wall-clock scheduling. If this hash changes, the lockstep engine
// picked up a source of nondeterminism (goroutine-order-dependent
// ghost exchange, unseeded randomness) or a behavior-affecting change
// to the sharded path landed without updating the golden.
const goldenSharded = "cded8d711e22533c8fdf1aa1d4d3d181203ef2ae5f31dea5ad487870095f1268"

func TestShardedRunMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full sharded simulations in -short mode")
	}
	// Inline and parallel workers must produce the same bytes, and so
	// must optimistic speculation (checkpoint, run ahead, roll back on
	// late ghosts): run the full cross.
	for _, workers := range []int{1, 4} {
		for _, optimistic := range []bool{false, true} {
			res, err := experiment.Run(experiment.Setup{
				Name: "sharded-golden", Rows: 8, Cols: 8, ImagePackets: 64, Seed: 42,
				Shards: 4, Workers: workers, Limit: 4 * time.Hour,
				Optimistic: optimistic,
				Invariants: &invariant.Config{},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
			snap := res.Collector.Snapshot(res.CompletionTime)
			var b strings.Builder
			fmt.Fprintf(&b, "completed=%v at=%v tx=%d rx=%d collisions=%d senders=%d\n",
				res.Completed, res.CompletionTime, snap.Tx, snap.Rx, snap.Collisions, snap.SenderEvents)
			for _, n := range res.Network.Nodes {
				fmt.Fprintf(&b, "%v completed=%v at=%v slots=%d\n",
					n.ID(), n.Completed(), n.CompletedAt(), n.EEPROM().Slots())
			}
			if got := hex.EncodeToString(sumOf(b.String())); got != goldenSharded {
				t.Errorf("workers=%d optimistic=%v: sharded report hash = %s, want %s (sharded execution is no longer a pure function of (seed, shards))\n%s",
					workers, optimistic, got, goldenSharded, b.String())
			}
		}
	}
}

func sumOf(s string) []byte {
	h := sha256.Sum256([]byte(s))
	return h[:]
}

// goldenMobile pins the full per-node outcome of a mobile run: a
// gossip dissemination over a 2×2 tile grid with every node on a
// seeded random-waypoint walk, positions updated at engine barriers.
// Mobile execution must be exactly as reproducible as static — a pure
// function of (seed, tile grid), independent of worker count. If this
// hash changes, the mobility layer picked up a source of
// nondeterminism (wall-clock sampling, unseeded trajectories,
// mid-window position writes) or a behavior-affecting change landed
// without updating the golden.
const goldenMobile = "140ab359e499979d7ded0d7aeb358a6378f6b95b4608cd7bcf898d1258ebbf04"

func TestMobileRunMatchesGolden(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, optimistic := range []bool{false, true} {
			res, err := experiment.Run(experiment.Setup{
				Name: "mobile-golden", Rows: 6, Cols: 6, ImagePackets: 64, Seed: 42,
				Protocol: experiment.ProtocolGossip, Limit: 4 * time.Hour,
				TileRows: 2, TileCols: 2, Shards: 4, Workers: workers,
				Optimistic:    optimistic,
				MobilityEvery: 2 * time.Second,
				Mobility: func(l *topology.Layout, seed int64) (topology.Mobility, error) {
					return topology.NewWaypoint(l, topology.WaypointConfig{
						SpeedMin: 1, SpeedMax: 3, Pause: 5 * time.Second, Seed: seed,
					})
				},
				Invariants: &invariant.Config{SenderOverlapBudget: 1 << 30},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Completed {
				t.Fatalf("workers=%d optimistic=%v: incomplete", workers, optimistic)
			}
			if err := res.VerifyInvariants(); err != nil {
				t.Fatal(err)
			}
			snap := res.Collector.Snapshot(res.CompletionTime)
			var b strings.Builder
			fmt.Fprintf(&b, "completed=%v at=%v tx=%d rx=%d collisions=%d senders=%d\n",
				res.Completed, res.CompletionTime, snap.Tx, snap.Rx, snap.Collisions, snap.SenderEvents)
			for _, n := range res.Network.Nodes {
				fmt.Fprintf(&b, "%v completed=%v at=%v slots=%d\n",
					n.ID(), n.Completed(), n.CompletedAt(), n.EEPROM().Slots())
			}
			if got := hex.EncodeToString(sumOf(b.String())); got != goldenMobile {
				t.Errorf("workers=%d optimistic=%v: mobile report hash = %s, want %s (mobile execution is no longer a pure function of (seed, grid))\n%s",
					workers, optimistic, got, goldenMobile, b.String())
			}
		}
	}
}
