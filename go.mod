module mnp

go 1.22
