// Multiprogram: the paper's §6 outlook realized — "rather than sending
// the data to the entire network, we can send different types of data
// to several disjoint or non-disjoint subsets of the network."
//
// Two programs disseminate concurrently through one 6x6 deployment:
// a firmware image (program 1) for every mote, seeded at the NW corner,
// and a calibration table (program 2) only for the even-numbered motes,
// seeded at the SE corner. Each mote runs one MNP instance per
// subscription behind a demultiplexer that shares its radio and EEPROM.
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"
	"time"

	"mnp/internal/core"
	"mnp/internal/image"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/sim"
	"mnp/internal/topology"
)

func main() {
	firmware, err := image.Random(1, 2, 1) // 5.6 KB, all motes
	if err != nil {
		log.Fatal(err)
	}
	calib, err := image.Random(2, 1, 2) // 2.8 KB, even motes only
	if err != nil {
		log.Fatal(err)
	}
	layout, err := topology.Grid(6, 6, 10)
	if err != nil {
		log.Fatal(err)
	}
	kernel := sim.New(3)
	medium, err := radio.NewMedium(kernel, layout, radio.DefaultParams(), 4)
	if err != nil {
		log.Fatal(err)
	}
	calibBase := packet.NodeID(layout.N() - 2) // an even node at the far corner
	wantsCalib := func(id packet.NodeID) bool { return id%2 == 0 }

	nw, err := node.NewNetwork(kernel, medium, layout, func(id packet.NodeID) (node.Protocol, node.Config) {
		ncfg := node.Config{TxPower: radio.PowerSim}
		fw := core.DefaultConfig()
		if id == 0 {
			fw.Base = true
			fw.Image = firmware
		}
		if !wantsCalib(id) {
			d, err := node.NewDemux(node.ProgramClassifier(1), core.New(fw))
			if err != nil {
				log.Fatal(err)
			}
			return d, ncfg
		}
		cal := core.DefaultConfig()
		if id == calibBase {
			cal.Base = true
			cal.Image = calib
		}
		d, err := node.NewDemux(node.ProgramClassifier(1, 2), core.New(fw), core.New(cal))
		if err != nil {
			log.Fatal(err)
		}
		return d, ncfg
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	nw.Start()

	fmt.Printf("disseminating firmware (%.1f KB) to all %d motes and calibration (%.1f KB) to the %d even motes…\n",
		float64(firmware.Size())/1024, layout.N(), float64(calib.Size())/1024, layout.N()/2)
	if !nw.RunUntilComplete(8 * time.Hour) {
		log.Fatalf("incomplete: %d/%d motes", nw.CompletedCount(), layout.N())
	}
	fmt.Printf("every mote finished its subscriptions in %s (simulated)\n",
		nw.CompletionTime().Round(time.Second))

	for _, n := range nw.Nodes {
		fwData, err := firmware.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt) // firmware is subprotocol 0
		})
		if err != nil || !firmware.Verify(fwData) {
			log.Fatalf("mote %v firmware corrupt: %v", n.ID(), err)
		}
		if wantsCalib(n.ID()) {
			calData, err := calib.Reassemble(func(seg, pkt int) []byte {
				return n.EEPROM().Read(node.SegSpace+seg, pkt) // subprotocol 1
			})
			if err != nil || !calib.Verify(calData) {
				log.Fatalf("mote %v calibration corrupt: %v", n.ID(), err)
			}
		}
	}
	fmt.Println("verified: firmware on all motes, calibration on exactly the subscribed subset")
}
