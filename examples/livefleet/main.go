// Livefleet: run the very same MNP state machines on real concurrency —
// one goroutine per mote, an in-memory broadcast hub, wall-clock
// timers compressed 400x — instead of the discrete-event simulator.
// This demonstrates that the protocol core is runtime-agnostic.
//
//	go run ./examples/livefleet
package main

import (
	"fmt"
	"log"
	"time"

	"mnp/internal/core"
	"mnp/internal/image"
	"mnp/internal/livenet"
	"mnp/internal/node"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

func main() {
	img, err := image.Random(1, 1, 99,
		image.WithSegmentPackets(32), image.WithPayloadSize(16))
	if err != nil {
		log.Fatal(err)
	}
	layout, err := topology.Grid(3, 3, 10)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	net, err := livenet.New(livenet.Config{
		Layout:    layout,
		Radio:     radio.DefaultParams(),
		TimeScale: 400, // 400 simulated seconds per wall second
		Power:     radio.PowerSim,
		Seed:      5,
	}, func(id packet.NodeID) node.Protocol {
		cfg := core.DefaultConfig()
		if id == 0 {
			cfg.Base = true
			cfg.Image = img
		}
		return core.New(cfg)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer net.Stop()

	fmt.Printf("running %d motes as goroutines, disseminating %.1f KB…\n",
		layout.N(), float64(img.Size())/1024)
	if !net.WaitAllComplete(60 * time.Second) {
		log.Fatalf("live dissemination incomplete: %d/%d motes",
			net.CompletedCount(), layout.N())
	}
	fmt.Printf("all %d motes completed in %s of wall time\n",
		layout.N(), time.Since(start).Round(time.Millisecond))

	for i := 0; i < layout.N(); i++ {
		id := packet.NodeID(i)
		data, err := img.Reassemble(func(seg, pkt int) []byte {
			return net.Store(id).Read(seg, pkt)
		})
		if err != nil {
			log.Fatalf("mote %v: %v", id, err)
		}
		if !img.Verify(data) {
			log.Fatalf("mote %v holds a corrupted image", id)
		}
	}
	fmt.Println("verified: every mote reassembled a byte-identical image")
}
