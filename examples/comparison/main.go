// Comparison: run MNP against the paper's baselines — Deluge, MOAP and
// single-hop XNP — on the same multihop deployment and the same
// program image, and print a side-by-side table.
//
// The matrix lives in comparison.toml, a checked-in campaign plan;
// this program just executes it. The same table reproduces from the
// artifact alone with:
//
//	go run ./cmd/mnprun examples/comparison/comparison.toml
//
// The shapes to look for (paper section 5): Deluge and MOAP keep their
// radios on, so their radio-on time tracks the completion time; MNP
// trades somewhat longer completion for far less active radio time;
// XNP, being single-hop, never covers the whole network at all.
//
//	go run ./examples/comparison
package main

import (
	_ "embed"
	"fmt"
	"log"

	"mnp/internal/campaign"
)

//go:embed comparison.toml
var planDoc []byte

func main() {
	plan, err := campaign.ParsePlan(planDoc)
	if err != nil {
		log.Fatal(err)
	}
	topo := plan.Scenario.Topology
	fmt.Printf("deployment: %dx%d grid, program %d packets (%.1f KB)\n\n",
		topo.Rows, topo.Cols, plan.Scenario.Run.ImagePackets,
		float64(plan.Scenario.Run.ImagePackets*22)/1024)

	out, err := (&campaign.Runner{Plan: plan}).Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out.Report)
	fmt.Println("\n(XNP is single-hop: nodes outside the base station's radio range stay")
	fmt.Println(" unprogrammed — the limitation that motivates multihop reprogramming)")
}
