// Comparison: run MNP against the paper's baselines — Deluge, MOAP and
// single-hop XNP — on the same multihop deployment and the same
// program image, and print a side-by-side table.
//
// The shapes to look for (paper section 5): Deluge and MOAP keep their
// radios on, so their idle listening time equals the completion time;
// MNP trades somewhat longer completion for far less active radio
// time; XNP, being single-hop, never covers the whole network at all.
//
//	go run ./examples/comparison
package main

import (
	"fmt"
	"log"
	"time"

	"mnp"
	"mnp/internal/packet"
)

func main() {
	const (
		rows, cols = 6, 6
		packets    = 256 // 2 segments, 5.6 KB
	)
	fmt.Printf("deployment: %dx%d grid, program %d packets (%.1f KB)\n\n",
		rows, cols, packets, float64(packets*22)/1024)
	fmt.Println("protocol  coverage  completion    mean ART   msgs sent")

	for _, proto := range []mnp.ProtocolKind{
		mnp.ProtocolMNP, mnp.ProtocolDeluge, mnp.ProtocolMOAP, mnp.ProtocolXNP,
	} {
		res, err := mnp.Simulate(mnp.Setup{
			Name:         fmt.Sprintf("compare-%v", proto),
			Rows:         rows,
			Cols:         cols,
			ImagePackets: packets,
			Protocol:     proto,
			Power:        mnp.PowerSim,
			Seed:         7,
			Limit:        8 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		ct := res.CompletionTime
		if !res.Completed {
			// XNP lands here: only single-hop neighbors are served.
			ct = res.Setup.Limit
		}
		totalTx := 0
		for i := 0; i < res.Layout.N(); i++ {
			totalTx += res.Collector.TxCount(packet.NodeID(i))
		}
		completion := "(never)"
		if res.Completed {
			completion = res.CompletionTime.Round(time.Second).String()
		}
		fmt.Printf("%-9v %4d/%-4d %10s %11s %11d\n",
			proto,
			res.Network.CompletedCount(), res.Layout.N(),
			completion,
			res.Collector.MeanActiveRadioTime(ct).Round(time.Second),
			totalTx)
	}
	fmt.Println("\n(XNP is single-hop: nodes outside the base station's radio range stay")
	fmt.Println(" unprogrammed — the limitation that motivates multihop reprogramming)")
}
