// Incremental: difference-based reprogramming over MNP. The paper
// notes that MNP is "complementary to difference-based approaches":
// when the fleet already runs version 1, the operator need only
// disseminate a patch. This example diffs v1 against v2, pushes the
// (much smaller) patch through a 10x10 network with MNP, has every
// mote apply it to its local v1, and compares against shipping the
// full v2 image.
//
//	go run ./examples/incremental
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mnp"
	"mnp/internal/imgdiff"
	"mnp/internal/packet"
)

func main() {
	// Version 1 — what every mote currently runs (28 KB).
	rng := rand.New(rand.NewSource(12))
	v1 := make([]byte, 28*1024)
	rng.Read(v1)

	// Version 2 — a realistic maintenance release: a handful of small
	// code edits plus one new 300-byte routine appended.
	v2 := append([]byte(nil), v1...)
	for _, at := range []int{1000, 7000, 15000, 22000} {
		copy(v2[at:], []byte("bugfix: bounds check added"))
	}
	extra := make([]byte, 300)
	rng.Read(extra)
	v2 = append(v2, extra...)

	patch, err := imgdiff.Diff(v1, v2, imgdiff.DefaultBlockSize)
	if err != nil {
		log.Fatal(err)
	}
	st, err := imgdiff.Inspect(patch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1: %.1f KB, v2: %.1f KB, patch: %.1f KB (%.1f%% of the full image)\n",
		float64(len(v1))/1024, float64(len(v2))/1024,
		float64(st.PatchSize)/1024, 100*st.Ratio())

	disseminate := func(name string, data []byte) *mnp.Result {
		res, err := mnp.Simulate(mnp.Setup{
			Name: name, Rows: 10, Cols: 10,
			ImageData: data,
			Seed:      4,
			Limit:     8 * time.Hour,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("%s incomplete (%d/%d)", name, res.Network.CompletedCount(), len(res.Network.Nodes))
		}
		return res
	}

	fmt.Println("\nvariant      payload  completion  mean ART  data msgs")
	for _, mode := range []string{"full image", "patch only"} {
		data := v2
		if mode == "patch only" {
			data = patch
		}
		res := disseminate(mode, data)
		dataTx := 0
		for i := 0; i < res.Layout.N(); i++ {
			dataTx += res.Collector.TxByClass(packet.NodeID(i), packet.ClassData)
		}
		fmt.Printf("%-12s %6.1fKB %11s %9s %10d\n", mode,
			float64(len(data))/1024,
			res.CompletionTime.Round(time.Second),
			res.Collector.MeanActiveRadioTime(res.CompletionTime).Round(time.Second),
			dataTx)

		if mode == "patch only" {
			// Every mote applies the received patch to its local v1.
			for _, n := range res.Network.Nodes {
				received, err := res.Image.Reassemble(func(seg, pkt int) []byte {
					return n.EEPROM().Read(seg, pkt)
				})
				if err != nil {
					log.Fatalf("mote %v: %v", n.ID(), err)
				}
				rebuilt, err := imgdiff.Apply(v1, received)
				if err != nil {
					log.Fatalf("mote %v: apply: %v", n.ID(), err)
				}
				if !bytes.Equal(rebuilt, v2) {
					log.Fatalf("mote %v reconstructed a wrong v2", n.ID())
				}
			}
			fmt.Println("verified: all 100 motes reconstructed v2 from v1 + patch")
		}
	}
}
