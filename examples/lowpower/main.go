// Lowpower: the paper's two energy extensions working together.
//
// Section 6 proposes advertising at reduced power when a node's battery
// is low, so drained nodes lose the sender election and forwarding duty
// shifts to healthy nodes. Section 4.2 suggests an S-MAC-style wakeup
// schedule so nodes sleep through the initial idle-listening period
// before the propagation wave arrives. This example runs a 8x8 network
// where a quarter of the nodes start at 10% battery, with both features
// enabled, and reports where the energy went.
//
//	go run ./examples/lowpower
package main

import (
	"fmt"
	"log"
	"time"

	"mnp"
	"mnp/internal/core"
	"mnp/internal/packet"
)

func main() {
	lowBattery := func(id packet.NodeID) bool { return id != 0 && id%4 == 0 }

	run := func(extensions bool) *mnp.Result {
		res, err := mnp.Simulate(mnp.Setup{
			Name:         fmt.Sprintf("lowpower ext=%v", extensions),
			Rows:         8,
			Cols:         8,
			Spacing:      12,
			ImagePackets: 256, // 2 segments
			Seed:         9,
			Limit:        8 * time.Hour,
			Battery: func(id packet.NodeID) float64 {
				if lowBattery(id) {
					return 0.10
				}
				return 1.0
			},
			MNP: func(_ packet.NodeID, c *core.Config) {
				if !extensions {
					return
				}
				c.BatteryAware = true
				c.LowPower = mnp.PowerWeak
				c.IdleDutyCycle = true
				c.IdleOnPeriod = 500 * time.Millisecond
				c.IdleOffPeriod = 1500 * time.Millisecond
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.Completed {
			log.Fatalf("dissemination incomplete (%d/%d)",
				res.Network.CompletedCount(), len(res.Network.Nodes))
		}
		if err := res.VerifyImages(); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		return res
	}

	fmt.Println("variant        completion  mean ART  drained-node data tx  drained-node charge (nAh)")
	for _, extensions := range []bool{false, true} {
		res := run(extensions)
		ct := res.CompletionTime
		lowTx, lowCharge, lowN := 0, 0.0, 0
		for i := 0; i < res.Layout.N(); i++ {
			id := packet.NodeID(i)
			if !lowBattery(id) {
				continue
			}
			lowN++
			lowTx += res.Collector.TxByClass(id, packet.ClassData)
			lowCharge += res.Collector.Ledger(id, ct).Total()
		}
		name := "baseline MNP"
		if extensions {
			name = "with extensions"
		}
		fmt.Printf("%-15s %9s %9s %21d %25.0f\n",
			name,
			ct.Round(time.Second),
			res.Collector.MeanActiveRadioTime(ct).Round(time.Second),
			lowTx, lowCharge/float64(lowN))
	}
	fmt.Println("\n(the extensions shift forwarding away from drained nodes and cut their")
	fmt.Println(" pre-contact idle listening, extending the network's weakest batteries)")
}
