// Quickstart: disseminate a 2.8 KB program image across a simulated
// 5x5 sensor grid with MNP and print what happened.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"mnp"
)

func main() {
	res, err := mnp.Simulate(mnp.Setup{
		Name:         "quickstart",
		Rows:         5,
		Cols:         5,
		Spacing:      10,  // feet between motes
		ImagePackets: 128, // one segment: 128 packets x 22 B = 2.8 KB
		Protocol:     mnp.ProtocolMNP,
		Power:        mnp.PowerSim,
		Seed:         1,
		Limit:        time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %s\n", res.Layout.Name())
	fmt.Printf("program: %d packets (%.1f KB)\n",
		res.Image.TotalPackets(), float64(res.Image.Size())/1024)
	if !res.Completed {
		log.Fatalf("dissemination incomplete: %d/%d nodes",
			res.Network.CompletedCount(), len(res.Network.Nodes))
	}
	fmt.Printf("all %d nodes reprogrammed in %s (simulated)\n",
		len(res.Network.Nodes), res.CompletionTime.Round(time.Second))

	// Reliability check: every node must hold a byte-identical image,
	// written to EEPROM exactly once per packet.
	if err := res.VerifyImages(); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verified: every node holds a byte-identical image (EEPROM write-once)")

	// Energy: the paper's headline metric is active radio time, since
	// idle listening dominates a mote's energy budget.
	ct := res.CompletionTime
	fmt.Printf("mean active radio time: %s (%.0f%% of completion time)\n",
		res.Collector.MeanActiveRadioTime(ct).Round(time.Second),
		100*res.Collector.MeanActiveRadioTime(ct).Seconds()/ct.Seconds())
	fmt.Printf("sender selection kept concurrent same-neighborhood senders at: %d\n",
		res.Collector.ConcurrencyViolations())

	fmt.Print("order in which nodes became senders:")
	for i, id := range res.Collector.SenderOrder() {
		fmt.Printf(" %d:%v", i+1, id)
	}
	fmt.Println()
}
