// Upgrade: the full reprogramming lifecycle. Version 1 is disseminated
// at deployment; months later the operator plugs the serial cable into
// the base station, loads version 2, and the network upgrades itself
// over the air — every mote abandons v1 the moment it hears a newer
// program advertised, erases its staging area, and re-acquires.
//
//	go run ./examples/upgrade
package main

import (
	"fmt"
	"log"
	"time"

	"mnp"
	"mnp/internal/core"
	"mnp/internal/image"
)

func main() {
	res, err := mnp.Simulate(mnp.Setup{
		Name: "deploy-v1", Rows: 6, Cols: 6,
		ImagePackets: 256, // v1: 5.6 KB
		Seed:         15,
		Limit:        4 * time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatal("v1 dissemination incomplete")
	}
	fmt.Printf("v1 (%.1f KB) deployed to all %d motes in %s\n",
		float64(res.Image.Size())/1024, len(res.Network.Nodes),
		res.CompletionTime.Round(time.Second))

	// The operator loads v2 at the base station over serial.
	v2, err := image.Random(2, 3, 99) // v2: 8.4 KB, program ID 2
	if err != nil {
		log.Fatal(err)
	}
	base, ok := res.Network.Node(0).Protocol().(*core.MNP)
	if !ok {
		log.Fatal("base protocol is not MNP")
	}
	upgradeStart := res.Kernel.Now()
	if err := base.LoadProgram(v2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nv2 (%.1f KB, 3 segments) loaded at the base; upgrading over the air…\n",
		float64(v2.Size())/1024)

	allOnV2 := func() bool {
		for _, n := range res.Network.Nodes {
			p := n.Protocol().(*core.MNP)
			if p.RvdSeg() != v2.Segments() {
				return false
			}
		}
		return true
	}
	if !res.Kernel.RunUntil(allOnV2, 8*time.Hour) {
		log.Fatal("upgrade incomplete")
	}
	fmt.Printf("all motes upgraded to v2 in %s\n",
		(res.Kernel.Now() - upgradeStart).Round(time.Second))

	for _, n := range res.Network.Nodes {
		data, err := v2.Reassemble(func(seg, pkt int) []byte {
			return n.EEPROM().Read(seg, pkt)
		})
		if err != nil || !v2.Verify(data) {
			log.Fatalf("mote %v holds a corrupt v2: %v", n.ID(), err)
		}
	}
	fmt.Println("verified: every mote staged a byte-identical v2 image")
}
