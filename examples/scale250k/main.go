// Scale250k: the sparse-geometry scaling demonstration — a 500x500
// grid (250,000 motes) built and disseminating under the same channel
// model the paper-scale experiments use.
//
// The dense radio geometry this release replaced stored an n² distance
// matrix plus per-power audibility and BER tables: at 250k nodes that
// is 500 GB before the first frame flies. The sparse geometry stores
// points plus a uniform grid hash (~20 B/node) and materializes link
// rows lazily through a bounded LRU cache, so the same deployment
// builds in milliseconds and runs in ordinary memory.
//
// The program prints the geometry build time and resident bytes, the
// fleet build time, then drives a short dissemination window from the
// corner base station and reports how far the wavefront got, the link
// cache hit rate, and the process heap.
//
//	go run ./examples/scale250k
//	go run ./examples/scale250k -rows 100 -cols 100 -window 10m
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	"mnp/internal/experiment"
	"mnp/internal/packet"
	"mnp/internal/radio"
	"mnp/internal/topology"
)

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

func main() {
	rows := flag.Int("rows", 500, "grid rows")
	cols := flag.Int("cols", 500, "grid cols")
	window := flag.Duration("window", 5*time.Minute, "simulated dissemination window")
	image := flag.Int("image", 48, "program size in 22-byte packets")
	flag.Parse()
	n := *rows * *cols

	// Stage 1: the geometry alone — the part that was O(n²).
	start := time.Now()
	layout, err := topology.Grid(*rows, *cols, 10)
	if err != nil {
		log.Fatal(err)
	}
	geo, err := radio.NewGeometry(layout, radio.DefaultParams(), 42)
	if err != nil {
		log.Fatal(err)
	}
	dense := uint64(n) * uint64(n) * 8
	fmt.Printf("geometry: %d nodes in %v, %.1f MB resident (dense matrix alone: %.0f GB)\n",
		n, time.Since(start).Round(time.Millisecond), float64(geo.Footprint())/(1<<20),
		float64(dense)/(1<<30))

	// Stage 2: the full fleet — protocol state, EEPROM, metrics.
	start = time.Now()
	res, err := experiment.Build(experiment.Setup{
		Name: "scale250k", Rows: *rows, Cols: *cols,
		ImagePackets: *image, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fleet:    %d motes built in %v, heap %.0f MB\n",
		n, time.Since(start).Round(time.Millisecond), heapMB())

	// Stage 3: a short dissemination window from the corner base.
	start = time.Now()
	res.Network.Start()
	res.Kernel.Run(*window)
	wall := time.Since(start)

	reached, frames := 0, 0
	for id := 0; id < n; id++ {
		if res.Collector.RxCount(packet.NodeID(id)) > 0 {
			reached++
		}
		frames += res.Collector.TxCount(packet.NodeID(id))
	}
	hits, misses, _, entries := res.Medium.CacheStats()
	fmt.Printf("window:   %v simulated in %v wall\n", *window, wall.Round(time.Millisecond))
	fmt.Printf("          %d frames sent, wavefront reached %d motes\n", frames, reached)
	fmt.Printf("          link cache: %d rows resident, %.1f%% hit rate (%d hits, %d misses)\n",
		entries, 100*res.Medium.CacheHitRate(), hits, misses)
	fmt.Printf("          heap after run: %.0f MB\n", heapMB())
	runtime.KeepAlive(res)
}
