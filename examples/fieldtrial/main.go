// Fieldtrial: the paper's motivating scenario end to end. A deployed
// 2x10 monitoring network (the outdoor strip of Figure 7) must be
// updated in place: the operator attaches a base station at one end,
// MNP pushes a 14 KB image hop by hop with pipelined segments, the
// operator inspects per-node status, and finally injects the external
// reboot signal — the paper deliberately never reboots on local
// estimates — which gossips across the network.
//
// The deployment itself is fieldtrial.toml, a checked-in scenario
// file; this program compiles and runs it, then drives the operator
// actions a declarative document cannot express.
//
//	go run ./examples/fieldtrial
package main

import (
	_ "embed"
	"fmt"
	"log"
	"time"

	"mnp"
	"mnp/internal/core"
	"mnp/internal/packet"
	"mnp/internal/scenario"
)

//go:embed fieldtrial.toml
var scenarioDoc []byte

func main() {
	sc, err := scenario.Parse(scenarioDoc)
	if err != nil {
		log.Fatal(err)
	}
	setup, err := sc.Compile()
	if err != nil {
		log.Fatal(err)
	}
	res, err := mnp.Simulate(setup)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Completed {
		log.Fatalf("update incomplete: %d/%d nodes",
			res.Network.CompletedCount(), len(res.Network.Nodes))
	}

	fmt.Printf("deployment: %s, image: %.1f KB in %d segments\n",
		res.Layout.Name(), float64(res.Image.Size())/1024, res.Image.Segments())
	fmt.Printf("dissemination finished in %s\n\n", res.CompletionTime.Round(time.Second))

	// Operator status sweep: who got the code when, and from whom.
	fmt.Println("node   got code at   parent   active radio time")
	for i := 0; i < res.Layout.N(); i++ {
		id := packet.NodeID(i)
		at, _ := res.Collector.GotCodeAt(id)
		parent := "base"
		if p, ok := res.Collector.Parent(id); ok {
			parent = p.String()
		}
		fmt.Printf("%-6v %12s %8s %15s\n", id,
			at.Round(time.Second), parent,
			res.Collector.ActiveRadioTime(id, 0, res.CompletionTime).Round(time.Second))
	}

	if err := res.VerifyImages(); err != nil {
		log.Fatalf("image verification failed: %v", err)
	}
	fmt.Println("\nall images verified byte-identical; sending reboot signal from the base…")

	// Inject the external start signal at the base station and let the
	// gossip spread, including to nodes currently sleeping.
	base, ok := res.Network.Node(0).Protocol().(*core.MNP)
	if !ok {
		log.Fatal("base protocol is not MNP")
	}
	base.Reboot()
	res.Kernel.Run(res.Kernel.Now() + 5*time.Minute)

	rebooted := 0
	for _, n := range res.Network.Nodes {
		if p, ok := n.Protocol().(*core.MNP); ok && p.Rebooted() {
			rebooted++
		}
	}
	fmt.Printf("reboot signal reached %d/%d nodes — the network now runs the new program\n",
		rebooted, res.Layout.N())
}
