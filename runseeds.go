package mnp

import (
	"runtime"
	"sync"
)

// SeedRun couples one seed with the report that an experiment produced
// for it.
type SeedRun struct {
	Seed   int64
	Report string
	Err    error
}

// RunSeeds reproduces one experiment across many seeds on a pool of
// workers and returns one SeedRun per seed. Each seed's simulation is a
// fully independent, single-threaded run — the kernel, medium and nodes
// share no state between seeds — so fanning out across OS threads
// cannot perturb any individual run. Results are merged
// deterministically: out[i] always corresponds to seeds[i], regardless
// of the order in which workers finish.
//
// workers <= 0 selects GOMAXPROCS. A nil or empty seed list returns an
// empty slice.
func RunSeeds(spec Spec, seeds []int64, workers int) []SeedRun {
	out := make([]SeedRun, len(seeds))
	if len(seeds) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				report, err := spec.Run(seeds[i])
				out[i] = SeedRun{Seed: seeds[i], Report: report, Err: err}
			}
		}()
	}
	for i := range seeds {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}
